//! Simple Moving Average post-processing (paper §IV-A).
//!
//! SW deviations are bidirectional, so averaging adjacent published values
//! lets positive and negative noise cancel: Lemma IV.1 shows the smoothed
//! variance drops by the window size. Smoothing is pure post-processing of
//! already-private outputs, so it consumes no budget.

/// Centered simple moving average with window `2k+1` where `window = 2k+1`.
///
/// At the boundaries, where fewer than `2k+1` values exist, the available
/// values are averaged (exactly the paper's boundary rule). `window` is
/// expected to be odd; an even value is widened by one to stay centered.
/// `window <= 1` returns the input unchanged.
#[must_use]
pub fn sma(xs: &[f64], window: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(xs.len());
    sma_into(xs, window, &mut out);
    out
}

/// [`sma`] writing into a reused buffer (cleared first) instead of
/// allocating. `out` must not alias `xs`.
pub fn sma_into(xs: &[f64], window: usize, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(xs.len());
    if window <= 1 || xs.is_empty() {
        out.extend_from_slice(xs);
        return;
    }
    let k = window / 2;
    out.extend((0..xs.len()).map(|t| {
        let lo = t.saturating_sub(k);
        let hi = (t + k + 1).min(xs.len());
        xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_is_identity() {
        let xs = [0.3, 0.9, 0.1];
        assert_eq!(sma(&xs, 1), xs.to_vec());
        assert_eq!(sma(&xs, 0), xs.to_vec());
    }

    #[test]
    fn empty_input_stays_empty() {
        assert!(sma(&[], 3).is_empty());
    }

    #[test]
    fn interior_average_window_three() {
        let xs = [0.0, 3.0, 6.0, 9.0];
        let out = sma(&xs, 3);
        assert!((out[1] - 3.0).abs() < 1e-12);
        assert!((out[2] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn boundaries_average_available_values() {
        let xs = [0.0, 3.0, 6.0];
        let out = sma(&xs, 3);
        assert!((out[0] - 1.5).abs() < 1e-12); // (0+3)/2
        assert!((out[2] - 4.5).abs() < 1e-12); // (3+6)/2
    }

    #[test]
    fn preserves_constant_streams() {
        let xs = vec![0.7; 20];
        assert!(sma(&xs, 5).iter().all(|&v| (v - 0.7).abs() < 1e-12));
    }

    #[test]
    fn reduces_noise_variance() {
        // Deterministic "noise": alternating ±1 around 0.5.
        let xs: Vec<f64> = (0..200)
            .map(|i| 0.5 + if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        let out = sma(&xs, 3);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&out) < var(&xs) / 2.0);
    }

    #[test]
    fn smoothing_preserves_interior_mean() {
        // On a long stream the SMA mean stays very close to the raw mean
        // (the paper: "smoothing has no impact on the mean").
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        let out = sma(&xs, 3);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean(&out) - mean(&xs)).abs() < 5e-3);
    }

    #[test]
    fn even_window_widens_to_centered() {
        let xs = [0.0, 3.0, 6.0, 9.0, 12.0];
        // window 4 -> k = 2, behaves like window 5
        assert_eq!(sma(&xs, 4), sma(&xs, 5));
    }
}
