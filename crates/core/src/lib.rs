//! Perturbation-parameterization algorithms for stream data publication
//! under w-event local differential privacy.
//!
//! This crate is the reference implementation of the ICDE 2025 paper
//! *"Dual Utilization of Perturbation for Stream Data Publication under
//! Local Differential Privacy"*. The central observation: each user knows
//! both their ground truth `x_t` and their perturbed report `x'_t`, so the
//! exact deviation `d_t = x_t − x'_t` is available locally and can be fed
//! back into the *input* of the next perturbation, calibrating earlier
//! noise away without spending extra budget.
//!
//! # Algorithms
//!
//! * [`Ipp`] — corrects only the most recent deviation (the baseline).
//! * [`App`] — corrects the *accumulated* deviation `D = Σ d_i`, followed
//!   by simple-moving-average smoothing.
//! * [`Capp`] — APP with an optimized clip range `[l, u] = [−T, 1+T]`
//!   before perturbation, trading sensitivity against discarded signal
//!   (see [`capp::ClipBounds`]).
//! * [`Sampling`] — PP-S: perturbs per-segment means with an optimized
//!   segment count for better subsequence mean estimation.
//! * [`GenericApp`] — the APP feedback loop over any
//!   [`ldp_mechanisms::Mechanism`] on its *native* input domain (the
//!   Figure 9 evaluation shape).
//! * [`highdim`] — Budget-Split and Sample-Split strategies for
//!   d-dimensional series.
//! * [`crowd`] — crowd-level statistics over user populations.
//!
//! # Mechanism-generic pipelines
//!
//! Every feedback algorithm above runs over an interchangeable
//! perturbation backend: [`App`], [`Capp`], [`Ipp`], and
//! [`OnlineSession`] accept any [`ldp_mechanisms::MechanismKind`]
//! (`of_mechanism` / [`OnlineSession::of_spec`]), defaulting to SW. The
//! [`backend::UnitBackend`] adapter translates between the unit-scale
//! stream and each mechanism's native domain, and routes debiasing:
//! unbiased mechanisms (SR / PM / Laplace / HM) take the **direct path**
//! (reports inverted through the affine `Mechanism::expected_output`
//! map, identity for them), while the biased SW keeps its **estimator
//! path** (raw reports; the feedback loop telescopes the bias away and
//! [`ldp_mechanisms::sw_estimate`] reconstructs distributions
//! downstream). A `(SessionKind, MechanismKind)` pair is a
//! [`PipelineSpec`]; [`PipelineSpec::grid`] enumerates all cells for the
//! collector fleet, the experiment grid, and the `pipeline_grid` bench.
//!
//! Every algorithm spends `ε/w` per time slot (or the sampling equivalent),
//! so any sliding window of `w` slots is covered by total budget `ε`
//! (w-event LDP, Theorems 3, 4 and 6 of the paper). The
//! [`accountant::WEventAccountant`] verifies this bookkeeping in tests.
//!
//! # Quickstart
//!
//! ```
//! use ldp_core::{Capp, StreamMechanism};
//! use rand::SeedableRng;
//!
//! let stream: Vec<f64> = (0..100).map(|t| 0.5 + 0.4 * (t as f64 / 10.0).sin()).collect();
//! let capp = Capp::new(4.0, 10).unwrap(); // total ε = 4 per window of w = 10
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let published = capp.publish(&stream, &mut rng);
//! assert_eq!(published.len(), stream.len());
//! ```

#![forbid(unsafe_code)]

pub mod accountant;
pub mod app;
pub mod backend;
pub mod capp;
pub mod crowd;
pub mod generic;
pub mod highdim;
pub mod ipp;
pub mod online;
pub mod publisher;
pub mod sampling;
pub mod smoothing;

pub use accountant::WEventAccountant;
pub use app::App;
pub use backend::UnitBackend;
pub use capp::{Capp, ClipBounds};
pub use generic::{DirectMechanismStream, GenericApp};
pub use ipp::Ipp;
pub use online::{OnlineSession, PipelineSpec, SessionKind};
pub use publisher::StreamMechanism;
pub use sampling::{optimal_sample_count, PpKind, Sampling};
pub use smoothing::{sma, sma_into};

/// Errors raised by algorithm constructors.
pub type Error = ldp_mechanisms::MechanismError;

/// `Result` alias for algorithm construction.
pub type Result<T> = std::result::Result<T, Error>;
