//! Mechanism-generic perturbation backend for the feedback algorithms.
//!
//! The paper's feedback rules (IPP / APP / CAPP) operate on unit-scale
//! streams `x ∈ [0, 1]`, but the five LDP mechanisms disagree about
//! domains: SW takes `[0, 1]` natively, while SR / PM / Laplace / HM take
//! `[−1, 1]`. [`UnitBackend`] hides that difference behind one
//! allocation-free call, [`UnitBackend::report_unit`], so `App` / `Capp` /
//! `Ipp` / `OnlineSession` can run their deviation loops over *any*
//! [`MechanismKind`].
//!
//! # Debiasing routes
//!
//! A feedback loop needs reports that are comparable to the input on the
//! unit scale — otherwise the deviation `x − x'` it feeds back is
//! systematically wrong. Two routes:
//!
//! * **Direct path (SR / PM / Laplace / HM).** The native report `y` is
//!   mapped through the inverse of the affine expectation map
//!   `E[y] = α·x + β` (coefficients read off [`Mechanism::expected_output`]
//!   at the domain endpoints), then affinely rescaled from the native
//!   input domain onto `[0, 1]`. These mechanisms are unbiased
//!   (`α = 1, β = 0`), so the inversion is the identity and the report is
//!   unbiased on the unit scale too — but the route is computed, not
//!   assumed, so a future biased mechanism is debiased automatically.
//! * **Estimator path (SW).** SW's bias is *not* inverted per report: the
//!   paper's algorithms deliberately feed the raw SW output back (the
//!   deviation telescopes the bias away) and reconstruct distributions
//!   downstream with [`ldp_mechanisms::sw_estimate`]. The backend pins
//!   `α = 1, β = 0` for SW, keeping every SW pipeline bit-identical to
//!   the pre-backend implementation.

use crate::Result;
use ldp_mechanisms::{AnyMechanism, Domain, Mechanism, MechanismKind};
use rand::RngCore;

/// A mechanism plus the affine maps that translate between the unit scale
/// `[0, 1]` and the mechanism's native input scale (see [module docs](self)).
#[derive(Debug, Clone, Copy)]
pub struct UnitBackend {
    mech: AnyMechanism,
    /// Native input domain (`[0,1]` for SW, `[−1,1]` for the rest).
    input: Domain,
    /// `1/α` of the affine expectation map `E[y] = α·x + β` (1 for SW —
    /// estimator path — and for all unbiased mechanisms).
    inv_gain: f64,
    /// `β` of the expectation map (0 on both current routes).
    offset: f64,
}

impl UnitBackend {
    /// Builds a backend for `kind` at privacy budget `epsilon`.
    ///
    /// # Errors
    /// Returns an error unless `0 < ε < ∞`.
    pub fn new(kind: MechanismKind, epsilon: f64) -> Result<Self> {
        let mech = kind.build(epsilon)?;
        let input = mech.input_domain();
        let (gain, offset) = if kind == MechanismKind::SquareWave {
            // Estimator path: raw SW reports; bias handled by the feedback
            // loop and the sw_estimate reconstruction, never per report.
            (1.0, 0.0)
        } else {
            // Direct path: invert E[y] = α·x + β, read off the endpoints.
            let (lo, hi) = (input.lo(), input.hi());
            let a = (mech.expected_output(hi) - mech.expected_output(lo)) / (hi - lo);
            (a, mech.expected_output(lo) - a * lo)
        };
        Ok(Self {
            mech,
            input,
            inv_gain: 1.0 / gain,
            offset,
        })
    }

    /// The backend's mechanism kind.
    #[must_use]
    pub fn kind(&self) -> MechanismKind {
        self.mech.kind()
    }

    /// The wrapped mechanism instance.
    #[must_use]
    pub fn mechanism(&self) -> &AnyMechanism {
        &self.mech
    }

    /// The privacy budget ε of the wrapped mechanism.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.mech.epsilon()
    }

    /// Perturbs a unit-scale value and returns the unit-scale report.
    ///
    /// `x01` is affinely mapped into the native input domain (and clamped
    /// there by the mechanism itself), perturbed, debiased per the routes
    /// above, and mapped back. No heap allocation; for SW this is exactly
    /// `sw.perturb(x01, rng)`.
    #[inline]
    pub fn report_unit(&self, x01: f64, rng: &mut dyn RngCore) -> f64 {
        let y = self.mech.perturb(self.input.denormalize(x01), rng);
        self.input.normalize((y - self.offset) * self.inv_gain)
    }

    /// Expected unit-scale report `E[report_unit(x01)]` (equals `x01` on
    /// the direct path; SW's affine contraction on the estimator path).
    #[must_use]
    pub fn expected_unit_report(&self, x01: f64) -> f64 {
        let e = self.mech.expected_output(self.input.denormalize(x01));
        self.input.normalize((e - self.offset) * self.inv_gain)
    }

    /// Variance of the unit-scale report at `x01`, from the mechanism's
    /// closed-form output variance rescaled onto the unit interval.
    #[must_use]
    pub fn unit_report_variance(&self, x01: f64) -> f64 {
        let native = self.mech.output_variance(self.input.denormalize(x01));
        let scale = self.inv_gain / self.input.width();
        native * scale * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_mechanisms::SquareWave;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn sw_backend_is_bit_identical_to_raw_sw() {
        let backend = UnitBackend::new(MechanismKind::SquareWave, 0.4).unwrap();
        let sw = SquareWave::new(0.4).unwrap();
        let (mut r1, mut r2) = (rng(1), rng(1));
        for i in 0..500 {
            let x = (i % 101) as f64 / 100.0;
            assert_eq!(backend.report_unit(x, &mut r1), sw.perturb(x, &mut r2));
        }
    }

    #[test]
    fn direct_path_reports_are_unbiased_on_unit_scale() {
        for kind in MechanismKind::ALL {
            if !kind.is_unbiased() {
                continue;
            }
            let backend = UnitBackend::new(kind, 1.0).unwrap();
            for &x in &[0.0, 0.3, 0.5, 1.0] {
                assert!(
                    (backend.expected_unit_report(x) - x).abs() < 1e-12,
                    "{kind}: E[report_unit({x})] = {}",
                    backend.expected_unit_report(x)
                );
            }
            // Empirical spot check.
            let mut r = rng(7);
            let n = 120_000;
            let m: f64 = (0..n)
                .map(|_| backend.report_unit(0.7, &mut r))
                .sum::<f64>()
                / n as f64;
            assert!((m - 0.7).abs() < 0.05, "{kind}: empirical mean {m}");
        }
    }

    #[test]
    fn sw_estimator_path_keeps_sw_bias() {
        let backend = UnitBackend::new(MechanismKind::SquareWave, 0.5).unwrap();
        let sw = SquareWave::new(0.5).unwrap();
        assert_eq!(backend.expected_unit_report(1.0), sw.expected_output(1.0));
        assert!((backend.expected_unit_report(1.0) - 1.0).abs() > 1e-3);
    }

    #[test]
    fn unit_variance_rescales_symmetric_mechanisms_by_a_quarter() {
        let backend = UnitBackend::new(MechanismKind::Laplace, 2.0).unwrap();
        // Native scale = 2/ε = 1 ⇒ native var = 2; unit var = 2/4.
        assert!((backend.unit_report_variance(0.5) - 0.5).abs() < 1e-12);
        let sw = UnitBackend::new(MechanismKind::SquareWave, 2.0).unwrap();
        assert!(
            (sw.unit_report_variance(1.0) - SquareWave::new(2.0).unwrap().output_variance(1.0))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn rejects_invalid_budget_for_every_kind() {
        for kind in MechanismKind::ALL {
            assert!(UnitBackend::new(kind, f64::NAN).is_err());
        }
    }
}
