#!/usr/bin/env bash
# Sync-facade lint: the collector and server must not use std's blocking
# synchronization primitives or thread-spawning entry points directly —
# they go through `ldp_collector::sync` (crates/collector/src/sync.rs),
# which re-exports std in normal builds and swaps in `ldp-check`'s
# instrumented types under `--cfg ldp_check`. A direct `std::sync::Mutex`
# is invisible to the schedule explorer, so this script fails CI on any
# new one.
#
# Deliberately NOT banned (see the facade's module docs):
#   * `std::sync::Arc` — plain reference counting carries no scheduling
#     decisions, so the facade re-exports it verbatim in both builds.
#   * `std::thread::scope` / `available_parallelism` — scoped threads
#     borrow the parent stack; the cooperative scheduler only models
#     detached `Builder::spawn` threads.
#
# Usage: tools/lint_sync_facade.sh  (from the repo root; exits non-zero
# on violations and prints each offending line).

set -u

repo_root="$(cd -- "$(dirname -- "$0")/.." && pwd)"
cd "$repo_root" || exit 1

# Scanned trees: the crates whose concurrency the checker exercises.
scan_dirs=(crates/collector/src crates/server/src crates/router/src)

# The facade itself is the one place allowed to name std's primitives.
allowlist='crates/collector/src/sync\.rs$'

# Banned tokens. Multi-line `use std::sync::{...}` groups still match
# because the brace group names the type on the same line as `Mutex` etc.
banned_pattern='std::sync::(Mutex|RwLock|Condvar|MutexGuard|RwLockReadGuard|RwLockWriteGuard|OnceLock|Barrier)|std::thread::(spawn|Builder|park|park_timeout|sleep)\b'

violations=0
while IFS= read -r line; do
    file="${line%%:*}"
    case "$file" in
        */sync.rs) continue ;;
    esac
    # Strip the match if it only appears in a comment (doc or line).
    code="${line#*:}"          # "<lineno>:<text>"
    code="${code#*:}"          # "<text>"
    stripped="${code%%//*}"    # drop trailing // comment
    if ! printf '%s' "$stripped" | grep -Eq "$banned_pattern"; then
        continue
    fi
    if [ "$violations" -eq 0 ]; then
        echo "sync-facade lint: direct std primitive use (route through ldp_collector::sync):" >&2
    fi
    echo "  $line" >&2
    violations=$((violations + 1))
done < <(grep -rnE "$banned_pattern" "${scan_dirs[@]}" 2>/dev/null | grep -Ev "$allowlist")

if [ "$violations" -gt 0 ]; then
    echo "sync-facade lint: $violations violation(s)." >&2
    echo "Use ldp_collector::sync::{Mutex, RwLock, Condvar, OnceLock} and" >&2
    echo "ldp_collector::sync::thread::{Builder, spawn, park, sleep} so the" >&2
    echo "types swap to ldp-check's instrumented versions under --cfg ldp_check." >&2
    exit 1
fi

echo "sync-facade lint: OK (no direct std::sync/std::thread primitive use outside the facade)."
