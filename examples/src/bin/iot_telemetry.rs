//! IoT telemetry: smart-meter publication with budget accounting.
//!
//! ```text
//! cargo run -p ldp-examples --release --bin iot_telemetry
//! ```
//!
//! A fleet of smart meters reports 96 quarter-hourly power readings per
//! day. Device profiles are mostly piecewise constant, the regime where
//! budget absorption (BA-SW) shines at large ε. This example publishes
//! each device's day under three algorithms, verifies the w-event spend
//! with the accountant, and reports which algorithm best preserves the
//! fleet's daily-mean distribution.

use ldp_baselines::{BaSw, SwDirect};
use ldp_core::{Capp, StreamMechanism, WEventAccountant};
use ldp_metrics::wasserstein_cdf_sum;
use ldp_streams::synthetic::power_population;
use rand::SeedableRng;

fn main() {
    let epsilon = 3.0;
    let w = 12; // three-hour sliding protection window
    let devices = 400;

    let fleet = power_population(devices, 96, 2024);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    // Verify the per-slot schedule respects w-event privacy.
    let mut accountant = WEventAccountant::new(w, epsilon);
    for _ in 0..96 {
        accountant.record(epsilon / w as f64);
    }
    println!(
        "accountant: max window spend {:.4} / budget {epsilon} -> w-event ok: {}",
        accountant.max_window_spend(),
        accountant.satisfies_w_event()
    );

    let algos: Vec<(&str, Box<dyn StreamMechanism>)> = vec![
        ("SW-direct", Box::new(SwDirect::new(epsilon, w).unwrap())),
        ("BA-SW", Box::new(BaSw::new(epsilon, w).unwrap())),
        ("CAPP", Box::new(Capp::new(epsilon, w).unwrap())),
    ];

    let true_means: Vec<f64> = fleet.iter().map(|s| s.mean()).collect();

    println!("\nfleet of {devices} devices, ε = {epsilon}, w = {w}");
    println!("{:<12} {:>28}", "algorithm", "Wasserstein(means est, true)");
    for (name, algo) in &algos {
        let est_means: Vec<f64> = fleet
            .iter()
            .map(|device| algo.estimate_mean(device.values(), &mut rng))
            .collect();
        let distance = wasserstein_cdf_sum(&est_means, &true_means, 50);
        println!("{name:<12} {distance:>28.4}");
    }

    println!("\n(lower is better: the collector reconstructs the fleet's");
    println!(" daily-mean distribution from private reports only)");
}
