//! End-to-end client→collector demo: a fleet of online CAPP sessions
//! streams perturbed reports into the sharded collector, which maintains
//! running crowd estimates that the analyst queries without ever seeing a
//! raw value.
//!
//! Run: `cargo run --release -p ldp-examples --bin crowd_collector`

use ldp_collector::{ClientFleet, Collector, CollectorConfig, FleetConfig};
use ldp_core::{crowd, PipelineSpec, SessionKind};
use ldp_streams::synthetic::taxi_population;

fn main() {
    let (users, slots) = (2_000, 120);
    let (epsilon, w) = (2.0, 24);
    let population = taxi_population(users, slots, 42);

    let collector = Collector::new(CollectorConfig::default());
    let fleet = ClientFleet::new(FleetConfig {
        spec: PipelineSpec::sw(SessionKind::Capp),
        epsilon,
        w,
        seed: 7,
        threads: ldp_collector::default_parallelism(),
    });

    let start = std::time::Instant::now();
    let reports = fleet
        .drive(&population, 0..slots, &collector)
        .expect("valid fleet config");
    let elapsed = start.elapsed();
    println!(
        "{users} users × {slots} slots → {reports} reports in {elapsed:.2?} \
         ({:.1}M reports/s, {} shards)",
        reports as f64 / elapsed.as_secs_f64() / 1e6,
        collector.shard_count(),
    );

    let snapshot = collector.snapshot();
    let truth = crowd::true_windowed_population_mean(&population, 0..slots);
    println!(
        "windowed population mean: collector {:.4} vs ground truth {:.4}",
        snapshot.windowed_mean(0..slots).expect("full coverage"),
        truth,
    );

    // Crowd-level statistics (paper §IV-C): the distribution of per-user
    // mean estimates vs the true distribution.
    let est = snapshot.per_user_means();
    let true_means = crowd::true_population_means(&population, 0..slots);
    let wasserstein = ldp_metrics::wasserstein_sorted(&est, &true_means);
    println!("crowd distribution distance (1-Wasserstein): {wasserstein:.4}");

    println!("\nfirst slots (crowd mean ± std across {users} users):");
    for slot in 0..8 {
        println!(
            "  t={slot:<3} mean {:.4}  std {:.4}  (true crowd mean {:.4})",
            snapshot.slot_mean(slot).unwrap(),
            snapshot.slot_variance(slot).unwrap().sqrt(),
            population.iter().map(|u| u.values()[slot]).sum::<f64>() / users as f64,
        );
    }
}
