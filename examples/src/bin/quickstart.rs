//! Quickstart: publish one private stream and inspect its quality.
//!
//! ```text
//! cargo run -p ldp-examples --release --bin quickstart
//! ```
//!
//! A user holds an hourly traffic stream normalized to `[0, 1]`. They want
//! to publish it continuously such that any sliding window of `w = 24`
//! hours is protected by a total privacy budget of ε = 2 (w-event LDP).
//! We compare the naive SW-direct baseline against the paper's CAPP.

use ldp_baselines::SwDirect;
use ldp_core::{Capp, StreamMechanism};
use ldp_metrics::{cosine_distance, mse};
use ldp_streams::synthetic::volume;
use rand::SeedableRng;

fn main() {
    let epsilon = 2.0;
    let w = 24; // one day of hourly readings per privacy window

    // One week of traffic data, normalized to [0, 1].
    let stream = volume(24 * 7, 42);
    let truth = stream.values();

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    let naive = SwDirect::new(epsilon, w).expect("valid budget");
    let capp = Capp::new(epsilon, w).expect("valid budget");

    let published_naive = naive.publish(truth, &mut rng);
    let published_capp = capp.publish(truth, &mut rng);

    println!("w-event LDP stream publication (ε = {epsilon}, w = {w})");
    println!("stream length: {} slots\n", truth.len());
    println!(
        "{:<12} {:>12} {:>18}",
        "algorithm", "MSE", "cosine distance"
    );
    for (name, published) in [("SW-direct", &published_naive), ("CAPP", &published_capp)] {
        println!(
            "{:<12} {:>12.5} {:>18.5}",
            name,
            mse(published, truth),
            cosine_distance(published, truth)
        );
    }

    let true_mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let capp_mean = published_capp.iter().sum::<f64>() / truth.len() as f64;
    println!("\ntrue weekly mean:      {true_mean:.4}");
    println!("CAPP estimated mean:   {capp_mean:.4}");
    println!(
        "absolute error:        {:.4}",
        (true_mean - capp_mean).abs()
    );
}
