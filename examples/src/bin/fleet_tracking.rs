//! Fleet tracking: crowd-level statistics over taxi latitude traces.
//!
//! ```text
//! cargo run -p ldp-examples --release --bin fleet_tracking
//! ```
//!
//! A dispatcher wants the distribution of average latitudes over the last
//! 30 ticks across a taxi fleet, without learning any single trace. Each
//! driver publishes privately with PP-S (APP over segment means); the
//! dispatcher aggregates per-driver mean estimates and compares sampling
//! vs non-sampling pipelines.

use ldp_core::crowd::{estimated_population_means, true_population_means};
use ldp_core::{App, PpKind, Sampling, StreamMechanism};
use ldp_metrics::{wasserstein_cdf_sum, Summary};
use ldp_streams::synthetic::taxi_population;
use rand::SeedableRng;

fn main() {
    let epsilon = 1.5;
    let w = 20;
    let q = 30; // query: mean latitude over the last 30 ticks
    let drivers = 500;

    let fleet = taxi_population(drivers, 200, 7);
    let range = 170..200;
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);

    let app = App::new(epsilon, w).expect("valid budget");
    let app_sampling = Sampling::new(PpKind::App, epsilon, w).expect("valid budget");
    println!(
        "PP-S picks n_s = {} segments for q = {q} (per-upload ε = {:.3})",
        app_sampling.sample_count(q),
        app_sampling.upload_epsilon(q)
    );

    let truth = true_population_means(&fleet, range.clone());
    let truth_summary: Summary = truth.iter().copied().collect();
    println!(
        "\ntrue fleet mean-latitude distribution: mean {:.4}, std {:.4}",
        truth_summary.mean(),
        truth_summary.std_dev()
    );

    println!(
        "\n{:<12} {:>12} {:>12} {:>14}",
        "algorithm", "est. mean", "est. std", "Wasserstein"
    );
    let algos: Vec<(&str, &dyn StreamMechanism)> = vec![("APP", &app), ("APP-S", &app_sampling)];
    for (name, algo) in algos {
        let est = estimated_population_means(&fleet, range.clone(), algo, &mut rng);
        let s: Summary = est.iter().copied().collect();
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>14.4}",
            name,
            s.mean(),
            s.std_dev(),
            wasserstein_cdf_sum(&est, &truth, 50)
        );
    }

    println!("\n(APP-S trades stream detail for sharper subsequence means —");
    println!(" the paper's Figure 8 effect)");
}
