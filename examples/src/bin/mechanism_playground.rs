//! Mechanism playground: how the APP feedback loop behaves across
//! different LDP mechanisms (the paper's Figure 9 in miniature).
//!
//! ```text
//! cargo run -p ldp-examples --release --bin mechanism_playground
//! ```

use ldp_core::{DirectMechanismStream, GenericApp, StreamMechanism};
use ldp_mechanisms::{Laplace, Mechanism, Piecewise, SquareWave, StochasticRounding};
use ldp_metrics::{cosine_distance, mse};
use ldp_streams::synthetic::sinusoidal;
use rand::SeedableRng;

fn evaluate(
    name: &str,
    direct: &dyn StreamMechanism,
    app: &dyn StreamMechanism,
    truth: &[f64],
    rng: &mut rand::rngs::StdRng,
) {
    let pub_direct = direct.publish(truth, rng);
    let pub_app = app.publish(truth, rng);
    println!(
        "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
        name,
        mse(&pub_direct, truth),
        mse(&pub_app, truth),
        cosine_distance(&pub_direct, truth),
        cosine_distance(&pub_app, truth),
    );
}

fn main() {
    let slot_epsilon = 0.2; // ε = 2 over a window of w = 10
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    // Signal on [0, 1] for SW; mapped to [−1, 1] for the others.
    let unit = sinusoidal(500, 0.01);
    let sym: Vec<f64> = unit.values().iter().map(|x| 2.0 * x - 1.0).collect();

    println!("per-slot ε = {slot_epsilon} (ε = 2, w = 10), 500-slot sinusoid\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "mechanism", "MSE direct", "MSE APP", "cos direct", "cos APP"
    );

    let sw = SquareWave::new(slot_epsilon).unwrap();
    evaluate(
        "SW",
        &DirectMechanismStream::new(sw),
        &GenericApp::new(sw),
        unit.values(),
        &mut rng,
    );

    let lap = Laplace::new(slot_epsilon).unwrap();
    evaluate(
        "Laplace",
        &DirectMechanismStream::new(lap),
        &GenericApp::new(lap),
        &sym,
        &mut rng,
    );

    let sr = StochasticRounding::new(slot_epsilon).unwrap();
    evaluate(
        "SR",
        &DirectMechanismStream::new(sr),
        &GenericApp::new(sr),
        &sym,
        &mut rng,
    );

    let pm = Piecewise::new(slot_epsilon).unwrap();
    println!(
        "(PM output range at this budget: ±{:.1})",
        pm.output_domain().hi()
    );
    evaluate(
        "PM",
        &DirectMechanismStream::new(pm),
        &GenericApp::new(pm),
        &sym,
        &mut rng,
    );

    println!("\nAPP reduces error for every mechanism; SW's bounded output");
    println!("range keeps it far ahead at small budgets (paper §IV-C).");
}
