//! Telemetry dashboard demo: the wire-served metrics snapshot, live.
//!
//! An `ldp-server` serves a collector over loopback TCP while a client
//! fleet streams perturbed reports into it. The main thread is a
//! telemetry dashboard on its own connection: each tick it pulls the full
//! `MetricsSnapshot` frame (`RemoteCollector::metrics`) and renders what
//! the hand-picked stats frame cannot carry — latency *distributions*
//! (p50/p90/p99 of the collector's fold and the server's frame decode),
//! per-shard batch counts (ingest imbalance), and transport byte rates.
//! A final hot-connection burst of large mixed batches engages the
//! work-stealing fold pool, so the `collector.pool.*` metrics and the
//! `fold_parallel_nanos` histogram show up live too. After the run it
//! dumps the whole metric catalog, so the output doubles as a reference
//! for what the registry exports.
//!
//! Run: `cargo run --release -p ldp-examples --bin telemetry_dashboard`

use ldp_collector::{ClientFleet, Collector, CollectorConfig, FleetConfig, SlotRetention};
use ldp_core::{PipelineSpec, SessionKind};
use ldp_server::{drive_fleet_loopback, RemoteCollector, Server, ServerConfig};
use ldp_streams::synthetic::taxi_population;
use ldp_telemetry::{HistogramSnapshot, MetricValue, TelemetrySnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let (users, slots) = (20_000, 240);
    let (epsilon, w, retain) = (2.0, 16, 32);
    let population = taxi_population(users, slots, 42);

    let collector = Arc::new(Collector::new(CollectorConfig {
        retention: SlotRetention::Last(retain),
        // At least one stealing worker and several shards even on a
        // small machine, and a threshold the burst below clears, so the
        // demo always exercises the parallel fold path.
        shards: ldp_collector::default_parallelism().clamp(4, 16),
        ingest_workers: ldp_collector::default_ingest_workers().max(1),
        parallel_fold_min: 8_192,
        ..CollectorConfig::default()
    }));
    let server =
        Server::bind(Arc::clone(&collector), ServerConfig::default()).expect("bind loopback");
    let fleet = ClientFleet::new(FleetConfig {
        spec: PipelineSpec::sw(SessionKind::Capp),
        epsilon,
        w,
        seed: 7,
        threads: ldp_collector::default_parallelism(),
    });

    println!(
        "{users} users × {slots} slots over framed TCP {} — live MetricsSnapshot polling",
        server.local_addr(),
    );
    println!(
        "\n  elapsed   reports/s    MiB/s in   fold p50/p99      decode p50/p99    shard imbalance"
    );

    let done = AtomicBool::new(false);
    let start = Instant::now();
    let uploaded = std::thread::scope(|scope| {
        let ingest = scope.spawn(|| {
            let n = drive_fleet_loopback(&fleet, &population, 0..slots, &server)
                .expect("loopback fleet drive");
            done.store(true, Ordering::Release);
            n
        });
        let mut dash = RemoteCollector::connect(server.local_addr()).expect("dashboard connect");
        let (mut last_accepted, mut last_bytes, mut last_t) = (0u64, 0u64, start);
        while !done.load(Ordering::Acquire) {
            let snap = dash.metrics().expect("metrics query");
            let now = Instant::now();
            let accepted = snap.counter("collector.reports.accepted").unwrap_or(0);
            let bytes_in = snap.counter("server.bytes.in").unwrap_or(0);
            let dt = now.duration_since(last_t).as_secs_f64().max(1e-9);
            print_row(
                start,
                &snap,
                (accepted - last_accepted) as f64 / dt,
                (bytes_in - last_bytes) as f64 / dt,
            );
            (last_accepted, last_bytes, last_t) = (accepted, bytes_in, now);
            std::thread::sleep(Duration::from_millis(50));
        }
        ingest.join().expect("ingest thread")
    });

    let elapsed = start.elapsed();
    println!(
        "\n{uploaded} reports in {elapsed:.2?} ({:.1}M reports/s) through the wire path",
        uploaded as f64 / elapsed.as_secs_f64() / 1e6,
    );

    // Fleet uploads are single-user batches (uniform, one-shard folds);
    // a hot connection carrying large *mixed* batches is what the
    // work-stealing pool is for. Burst a few through so the pool metrics
    // below are live numbers, not zeros.
    let mut hot = RemoteCollector::connect(server.local_addr()).expect("hot connect");
    let mut state = 0x0123_4567_89AB_CDEFu64;
    for _ in 0..16 {
        let mut batch = ldp_collector::ReportBatch::with_capacity(16_384);
        for i in 0..16_384u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            batch.push(
                state >> 40,
                i % retain,
                ((state >> 11) % 4096) as f64 / 4096.0,
            );
        }
        hot.ingest(&batch).expect("hot ingest");
    }
    let burst = hot.sync().expect("hot sync");

    let mut dash = RemoteCollector::connect(server.local_addr()).expect("dashboard connect");
    let snap = dash.metrics().expect("final metrics query");
    let pool_runs = snap.counter("collector.pool.runs").unwrap_or(0);
    let steals = snap.counter("collector.pool.steals").unwrap_or(0);
    let steal_rate = if pool_runs > 0 {
        100.0 * steals as f64 / pool_runs as f64
    } else {
        0.0
    };
    println!(
        "\nwork-stealing fold pool (hot-connection burst of {} mixed reports):",
        burst.accepted
    );
    println!(
        "  runs dispatched {pool_runs}, stolen {steals} ({steal_rate:.0}%); \
         queue depth now {}, busy workers now {}",
        snap.gauge("collector.pool.queue_depth").unwrap_or(0),
        snap.gauge("collector.pool.workers_busy").unwrap_or(0),
    );
    if let Some(h) = snap.histogram("collector.ingest.fold_parallel_nanos") {
        println!("  parallel fold {}", quantiles(h));
    }

    println!("\nfull metric catalog ({} metrics):", snap.entries.len());
    for entry in &snap.entries {
        match &entry.value {
            MetricValue::Counter(v) => println!("  {:<44} counter    {v}", entry.name),
            MetricValue::Gauge(v) => println!("  {:<44} gauge      {v}", entry.name),
            MetricValue::Histogram(h) => println!(
                "  {:<44} histogram  n={} {}",
                entry.name,
                h.count(),
                quantiles(h),
            ),
        }
    }
}

fn print_row(start: Instant, snap: &TelemetrySnapshot, report_rate: f64, byte_rate: f64) {
    let fold = snap.histogram("collector.ingest.fold_nanos");
    let decode = snap.histogram("server.frame.decode_nanos");
    let fmt_h = |h: Option<&HistogramSnapshot>| match h.and_then(|h| Some((h.p50()?, h.p99()?))) {
        Some((p50, p99)) => format!("{:>6}/{:<6}µs", p50 / 1_000, p99 / 1_000),
        None => "        --    ".into(),
    };
    println!(
        "  {:>7.0?}  {:>9.2}M   {:>8.1}   {}   {}   {:>8.2}×",
        start.elapsed(),
        report_rate / 1e6,
        byte_rate / (1 << 20) as f64,
        fmt_h(fold),
        fmt_h(decode),
        shard_imbalance(snap),
    );
}

/// Max/mean ratio of per-shard batch counts: 1.00× is a perfectly even
/// spread, higher means some shards are doing more folding than others.
fn shard_imbalance(snap: &TelemetrySnapshot) -> f64 {
    let counts: Vec<u64> = snap
        .entries
        .iter()
        .filter(|e| e.name.starts_with("collector.shard.") && e.name.ends_with(".batches"))
        .filter_map(|e| match e.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .collect();
    let total: u64 = counts.iter().sum();
    if counts.is_empty() || total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    *counts.iter().max().expect("non-empty") as f64 / mean
}

fn quantiles(h: &HistogramSnapshot) -> String {
    match (h.p50(), h.p90(), h.p99()) {
        (Some(p50), Some(p90), Some(p99)) => {
            format!("p50≤{p50} p90≤{p90} p99≤{p99} max={}", h.max())
        }
        _ => "(empty)".into(),
    }
}
