//! Remote dashboard demo: the full network deployment shape on one box.
//!
//! An `ldp-server` serves a retention-bounded collector over loopback
//! TCP; a client fleet streams perturbed reports into it through
//! `RemoteCollector` connections (one per worker); and the main thread is
//! a *remote* dashboard — a separate connection polling the query frames
//! (summary, windowed mean, population mean) and the server's operational
//! counters (accepted/dropped/rejected reports, connections, frames
//! decoded/failed) while ingest runs.
//!
//! Run: `cargo run --release -p ldp-examples --bin remote_dashboard`

use ldp_collector::{ClientFleet, Collector, CollectorConfig, FleetConfig, SlotRetention};
use ldp_core::{PipelineSpec, SessionKind};
use ldp_server::{drive_fleet_loopback, RemoteCollector, Server, ServerConfig};
use ldp_streams::synthetic::taxi_population;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let (users, slots) = (20_000, 240);
    let (epsilon, w, retain) = (2.0, 16, 32);
    let population = taxi_population(users, slots, 42);

    let collector = Arc::new(Collector::new(CollectorConfig {
        retention: SlotRetention::Last(retain),
        ..CollectorConfig::default()
    }));
    let server =
        Server::bind(Arc::clone(&collector), ServerConfig::default()).expect("bind loopback");
    let fleet = ClientFleet::new(FleetConfig {
        spec: PipelineSpec::sw(SessionKind::Capp),
        epsilon,
        w,
        seed: 7,
        threads: ldp_collector::default_parallelism(),
    });

    println!(
        "{users} users × {slots} slots over framed TCP {}, w = {w}, retention = last {retain} slots",
        server.local_addr(),
    );
    println!(
        "\n  elapsed   reports   conns   frames(ok/bad)   window mean   population mean   queries"
    );

    let done = AtomicBool::new(false);
    let start = Instant::now();
    let uploaded = std::thread::scope(|scope| {
        let ingest = scope.spawn(|| {
            let n = drive_fleet_loopback(&fleet, &population, 0..slots, &server)
                .expect("loopback fleet drive");
            done.store(true, Ordering::Release);
            n
        });
        // The dashboard: its own connection, polling queries + counters.
        let mut dash = RemoteCollector::connect(server.local_addr()).expect("dashboard connect");
        while !done.load(Ordering::Acquire) {
            print_row(start, &mut dash, w);
            std::thread::sleep(Duration::from_millis(25));
        }
        ingest.join().expect("ingest thread")
    });
    let mut dash = RemoteCollector::connect(server.local_addr()).expect("dashboard connect");
    print_row(start, &mut dash, w);

    let elapsed = start.elapsed();
    let stats = dash.server_stats().expect("stats");
    let summary = dash.summary().expect("summary");
    println!(
        "\n{uploaded} reports in {elapsed:.2?} ({:.1}M reports/s) through the wire path",
        uploaded as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!(
        "server counters: {} accepted, {} dropped, {} rejected ({} upstream); \
         {} connections total ({} refused); {} frames decoded, {} failed; {} queries",
        stats.accepted_reports,
        stats.dropped_reports,
        stats.rejected_reports,
        stats.upstream_rejected_reports,
        stats.total_connections,
        stats.rejected_connections,
        stats.frames_decoded,
        stats.frames_failed,
        stats.queries_answered,
    );
    println!(
        "wire transport: {} ingest frames, {:.1} MiB in, {:.1} MiB out",
        stats.ingest_frames,
        stats.bytes_in as f64 / (1 << 20) as f64,
        stats.bytes_out as f64 / (1 << 20) as f64,
    );
    let metrics = dash.metrics().expect("metrics");
    if let Some(fold) = metrics.histogram("collector.ingest.fold_nanos") {
        println!(
            "ingest fold latency: p99 ≤ {}µs over {} batches (p50 ≤ {}µs, max {}µs)",
            fold.p99().unwrap_or(0) / 1_000,
            fold.count(),
            fold.p50().unwrap_or(0) / 1_000,
            fold.max() / 1_000,
        );
    }
    let truth = ldp_core::crowd::true_windowed_population_mean(&population, 0..slots);
    println!(
        "population mean: remote estimate {:.4} vs ground truth {:.4} ({} users seen)",
        summary.population_mean.unwrap_or(f64::NAN),
        truth,
        summary.user_count,
    );
}

fn print_row(start: Instant, dash: &mut RemoteCollector, w: usize) {
    let summary = dash.summary().expect("summary query");
    let stats = dash.server_stats().expect("stats query");
    let end = summary.slot_end;
    let from = end.saturating_sub(w as u64).max(summary.retained_base);
    let window = if from < end {
        dash.windowed_mean(from..end).expect("windowed query")
    } else {
        None
    };
    let fmt = |v: Option<f64>| v.map_or_else(|| "    --".into(), |m| format!("{m:.4}"));
    println!(
        "  {:>7.0?}  {:>8}   {:>5}   {:>6}/{:<3}      {:>11}   {:>15}   {:>7}",
        start.elapsed(),
        summary.total_reports,
        stats.active_connections,
        stats.frames_decoded,
        stats.frames_failed,
        fmt(window),
        fmt(summary.population_mean),
        stats.queries_answered,
    );
}
