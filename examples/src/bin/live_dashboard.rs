//! Live dashboard demo: a client fleet streams perturbed reports into a
//! retention-bounded collector while the main thread serves crowd
//! statistics from a [`ldp_collector::QueryEngine`] — ingest and queries
//! running *concurrently*, the deployment shape the paper's w-event
//! setting implies (only the trailing window ever matters).
//!
//! The collector keeps the last 32 slots; everything older folds into
//! frozen prefix totals, so memory stays flat no matter how long the
//! stream runs, while lifetime aggregates (total reports, population
//! mean) remain exact.
//!
//! Run: `cargo run --release -p ldp-examples --bin live_dashboard`

use ldp_collector::{
    ClientFleet, Collector, CollectorConfig, FleetConfig, QueryEngine, SlotRetention,
};
use ldp_core::{PipelineSpec, SessionKind};
use ldp_streams::synthetic::taxi_population;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let (users, slots) = (20_000, 240);
    let (epsilon, w, retain) = (2.0, 16, 32);
    let population = taxi_population(users, slots, 42);

    let collector = Collector::new(CollectorConfig {
        retention: SlotRetention::Last(retain),
        ..CollectorConfig::default()
    });
    let fleet = ClientFleet::new(FleetConfig {
        spec: PipelineSpec::sw(SessionKind::Capp),
        epsilon,
        w,
        seed: 7,
        threads: ldp_collector::default_parallelism(),
    });

    println!(
        "{users} users × {slots} slots, w = {w}, retention = last {retain} slots, {} shards",
        collector.shard_count(),
    );
    println!("\n  elapsed   reports   retained   latest-slot mean   window mean   population mean");

    let engine = QueryEngine::new(&collector);
    let done = AtomicBool::new(false);
    let start = Instant::now();
    let uploaded = std::thread::scope(|scope| {
        let ingest = scope.spawn(|| {
            let n = fleet
                .drive(&population, 0..slots, &collector)
                .expect("valid fleet config");
            done.store(true, Ordering::Release);
            n
        });
        // The dashboard loop: refresh the cached view, print one line,
        // sleep — never touching the ingest mutexes between refreshes.
        while !done.load(Ordering::Acquire) {
            engine.refresh();
            let view = engine.view();
            let end = view.slot_end() as usize;
            print_row(start, &view, end, w);
            std::thread::sleep(Duration::from_millis(25));
        }
        ingest.join().expect("ingest thread")
    });
    engine.refresh();
    let view = engine.view();
    print_row(start, &view, view.slot_end() as usize, w);

    let elapsed = start.elapsed();
    println!(
        "\n{uploaded} reports in {elapsed:.2?} ({:.1}M reports/s) with live queries attached",
        uploaded as f64 / elapsed.as_secs_f64() / 1e6,
    );
    println!(
        "final view: {} users, {} retained slots (of {} seen), {} expired reports frozen",
        view.user_count(),
        view.slot_count(),
        view.slot_end(),
        view.frozen().count,
    );
    let truth = ldp_core::crowd::true_windowed_population_mean(&population, 0..slots);
    println!(
        "population mean: live estimate {:.4} vs ground truth {:.4}",
        view.population_mean().unwrap_or(f64::NAN),
        truth,
    );
}

fn print_row(start: Instant, view: &ldp_collector::LiveView, end: usize, w: usize) {
    let fmt = |v: Option<f64>| v.map_or_else(|| "    --".into(), |m| format!("{m:.4}"));
    println!(
        "  {:>7.0?}  {:>8}   {:>8}   {:>16}   {:>11}   {:>15}",
        start.elapsed(),
        view.total_reports(),
        view.slot_count(),
        fmt(view.slot_mean(end.saturating_sub(1))),
        fmt(view.windowed_mean(end.saturating_sub(w)..end)),
        fmt(view.population_mean()),
    );
}
