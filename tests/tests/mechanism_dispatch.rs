//! Mechanism-dispatch parity and pipeline-grid guarantees.
//!
//! The mechanism-generic pipeline rides on two invariants:
//!
//! 1. **Dispatch parity** — routing a mechanism through
//!    [`MechanismKind::build`] / [`AnyMechanism`] must be seed-for-seed
//!    identical to calling the concrete type directly, for the scalar,
//!    batch-into, and batch-alloc sampling paths alike. Otherwise the
//!    fleet (dispatched) and the figure reproductions (concrete) would
//!    silently disagree.
//! 2. **w-event safety of every grid cell** — an [`OnlineSession`] for
//!    any `(SessionKind, MechanismKind)` pair spends at most ε in any
//!    window of `w` slots, because the budget schedule is set by the
//!    session, not by the mechanism.

use integration_tests::test_rng;
use ldp_core::online::{OnlineSession, PipelineSpec};
use ldp_mechanisms::{
    Hybrid, Laplace, Mechanism, MechanismKind, Piecewise, SquareWave, StochasticRounding,
};
use proptest::prelude::*;

/// Test inputs spanning the unit domain (clamping covers the symmetric
/// mechanisms' wider domain: the backend hands them native-scale values).
fn unit_inputs() -> Vec<f64> {
    (0..64).map(|i| i as f64 / 63.0).collect()
}

fn native_inputs(kind: MechanismKind, eps: f64) -> Vec<f64> {
    let dom = kind.build(eps).unwrap().input_domain();
    unit_inputs().iter().map(|&x| dom.denormalize(x)).collect()
}

/// Sequential concrete perturb calls for a kind, consuming `rng` exactly
/// like the dispatched path should.
fn concrete_sequential(kind: MechanismKind, eps: f64, xs: &[f64], seed: u64) -> Vec<f64> {
    let mut rng = test_rng(seed);
    match kind {
        MechanismKind::SquareWave => {
            let m = SquareWave::new(eps).unwrap();
            xs.iter().map(|&x| m.perturb(x, &mut rng)).collect()
        }
        MechanismKind::StochasticRounding => {
            let m = StochasticRounding::new(eps).unwrap();
            xs.iter().map(|&x| m.perturb(x, &mut rng)).collect()
        }
        MechanismKind::Piecewise => {
            let m = Piecewise::new(eps).unwrap();
            xs.iter().map(|&x| m.perturb(x, &mut rng)).collect()
        }
        MechanismKind::Laplace => {
            let m = Laplace::new(eps).unwrap();
            xs.iter().map(|&x| m.perturb(x, &mut rng)).collect()
        }
        MechanismKind::Hybrid => {
            let m = Hybrid::new(eps).unwrap();
            xs.iter().map(|&x| m.perturb(x, &mut rng)).collect()
        }
    }
}

/// Dispatch parity across all three sampling paths, for every kind and a
/// spread of budgets (including ones straddling the Hybrid PM threshold).
#[test]
fn dispatched_sampling_is_seed_identical_to_concrete() {
    for kind in MechanismKind::ALL {
        for &eps in &[0.1, 0.61, 1.0, 3.0] {
            let xs = native_inputs(kind, eps);
            let reference = concrete_sequential(kind, eps, &xs, 42);

            let any = kind.build(eps).unwrap();
            // Scalar dispatch.
            let mut rng = test_rng(42);
            let scalar: Vec<f64> = xs.iter().map(|&x| any.perturb(x, &mut rng)).collect();
            assert_eq!(scalar, reference, "{kind} ε={eps}: scalar dispatch");

            // Batch-into dispatch (specialized overrides).
            let mut out = vec![0.0; xs.len()];
            any.perturb_into(&xs, &mut out, &mut test_rng(42));
            assert_eq!(out, reference, "{kind} ε={eps}: perturb_into");

            // Batch-alloc dispatch.
            assert_eq!(
                any.perturb_slice(&xs, &mut test_rng(42)),
                reference,
                "{kind} ε={eps}: perturb_slice"
            );
        }
    }
}

/// The moment interfaces agree through dispatch too: the density at the
/// expected output and the ε accessor survive the enum round trip.
#[test]
fn dispatched_metadata_matches_concrete() {
    for kind in MechanismKind::ALL {
        let eps = 1.2;
        let any = kind.build(eps).unwrap();
        assert_eq!(any.epsilon(), eps, "{kind}");
        let x = any.input_domain().denormalize(0.75);
        assert!(any.output_domain().contains(any.expected_output(x)) || !kind.is_unbiased());
        // A mechanism must put positive density (or mass) somewhere.
        let y = any.perturb(x, &mut test_rng(1));
        assert!(
            any.density(x, y) > 0.0,
            "{kind}: zero density at own sample"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every (SessionKind, MechanismKind) cell preserves the w-event
    /// guarantee under arbitrary budgets, windows, and stream lengths —
    /// and its budget schedule saturates the window, so the check is
    /// tight rather than vacuous.
    #[test]
    fn every_pipeline_cell_preserves_the_w_event_guarantee(
        eps in 0.1..6.0f64,
        w in 1usize..32,
        slots in 1usize..200,
        seed in 0u64..500,
    ) {
        for spec in PipelineSpec::grid() {
            let mut session = OnlineSession::of_spec(spec, eps, w).unwrap();
            let mut rng = test_rng(seed);
            for t in 0..slots {
                let x = 0.5 + 0.4 * ((t as f64) / 9.0).sin();
                let y = session.report(x, &mut rng);
                prop_assert!(y.is_finite(), "{}: non-finite report", spec.label());
            }
            let acc = session.accountant();
            prop_assert!(
                acc.satisfies_w_event(),
                "{} violates the w-event guarantee",
                spec.label()
            );
            prop_assert!(acc.max_window_spend() <= eps * (1.0 + 1e-9));
            if slots >= w {
                prop_assert!(
                    acc.max_window_spend() >= eps * (1.0 - 1e-9),
                    "{}: schedule should saturate the window budget",
                    spec.label()
                );
            }
        }
    }

    /// Unbiased backends stay unbiased through the whole unit-scale
    /// pipeline: a direct (no-feedback) session's reports average to the
    /// input.
    #[test]
    fn direct_sessions_over_unbiased_backends_center_on_the_input(
        x in 0.05..0.95f64,
        seed in 0u64..100,
    ) {
        use ldp_core::online::SessionKind;
        for mechanism in MechanismKind::ALL {
            if !mechanism.is_unbiased() {
                continue;
            }
            let spec = PipelineSpec::new(SessionKind::SwDirect, mechanism);
            // Generous ε (slot budget 10) so 400 samples give a tight
            // empirical mean, while staying well inside f64 range for
            // PM/HM whose parameters hold e^ε.
            let mut session = OnlineSession::of_spec(spec, 40.0, 4).unwrap();
            let mut rng = test_rng(seed);
            let n = 400;
            let mean: f64 = (0..n).map(|_| session.report(x, &mut rng)).sum::<f64>() / n as f64;
            prop_assert!(
                (mean - x).abs() < 0.1,
                "{}: empirical mean {mean} far from input {x}",
                spec.label()
            );
        }
    }
}
