//! Equivalence and liveness guarantees of the work-stealing parallel
//! shard fold:
//!
//! 1. Parallel fold ≡ serial fold: identical per-batch `IngestOutcome`
//!    ledgers and **bit-identical** collector state — per-user means,
//!    slot sums/sum-of-squares, and the incremental `mean_sum` behind
//!    the live population mean are compared exactly (`to_bits`), not
//!    ≤1e-9 — across worker counts 1/2/8, on hostile columns, single
//!    batches and multi-batch streams alike. Within a batch each shard's
//!    run is folded by exactly one thread in index order, so which
//!    thread stole which run must not be observable in any bit.
//! 2. Shutdown loses nothing: stopping the pool while submitter threads
//!    are mid-stream never strands a run — every batch's ledger stays
//!    exact and every report lands.

use ldp_collector::{Collector, CollectorConfig, IngestOutcome, QueryEngine, ReportBatch};
use proptest::prelude::*;

/// Deterministic hostile columns: ~1/7 non-finite values, ~1/5 slots at
/// or beyond the collector bound, user ids spread across shards.
fn hostile_columns(n: usize, seed: u64, max_slots: u64) -> (Vec<u64>, Vec<u64>, Vec<f64>) {
    let mut users = Vec::with_capacity(n);
    let mut slots = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF;
    for _ in 0..n {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        users.push(state >> 48);
        slots.push(match state % 5 {
            0 => max_slots + (state >> 20) % 1000, // dropped
            _ => (state >> 8) % max_slots,
        });
        values.push(match state % 7 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => ((state >> 13) % 4096) as f64 / 4096.0 - 0.5,
        });
    }
    (users, slots, values)
}

fn collector(shards: usize, workers: usize) -> Collector {
    Collector::new(CollectorConfig {
        shards,
        max_slots: 64,
        ingest_workers: workers,
        // Force even tiny batches through the pool: the threshold is a
        // throughput tuning knob, and this test is about correctness.
        parallel_fold_min: 1,
        ..CollectorConfig::default()
    })
}

/// Asserts two collectors hold bit-identical state: exact ledgers, exact
/// per-user means, exact slot statistics, and an exactly equal live
/// population mean (the incremental per-shard `mean_sum` scalar).
fn assert_bit_identical(serial: &Collector, parallel: &Collector, label: &str) {
    assert_eq!(serial.total_reports(), parallel.total_reports(), "{label}");
    assert_eq!(
        serial.dropped_reports(),
        parallel.dropped_reports(),
        "{label}"
    );
    assert_eq!(
        serial.rejected_reports(),
        parallel.rejected_reports(),
        "{label}"
    );
    let (a, b) = (serial.snapshot(), parallel.snapshot());
    assert_eq!(a.user_ids(), b.user_ids(), "{label}");
    let means_a: Vec<u64> = a.per_user_means().iter().map(|m| m.to_bits()).collect();
    let means_b: Vec<u64> = b.per_user_means().iter().map(|m| m.to_bits()).collect();
    assert_eq!(means_a, means_b, "{label}: per-user means bit-identical");
    assert_eq!(a.slot_count(), b.slot_count(), "{label}");
    for (x, y) in a.slots().iter().zip(b.slots()) {
        assert_eq!(x.count, y.count, "{label}");
        assert_eq!(x.sum.to_bits(), y.sum.to_bits(), "{label}");
        assert_eq!(x.sum_sq.to_bits(), y.sum_sq.to_bits(), "{label}");
    }
    assert_eq!(serial.per_user_rows(), parallel.per_user_rows(), "{label}");
    // The live path's population mean comes from the incremental
    // per-shard mean-sum scalar maintained at ingest — exact, not ≤1e-9.
    let (qa, qb) = (QueryEngine::new(serial), QueryEngine::new(parallel));
    qa.refresh();
    qb.refresh();
    assert_eq!(
        qa.view().population_mean().map(f64::to_bits),
        qb.view().population_mean().map(f64::to_bits),
        "{label}: live mean_sum bit-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_fold_matches_serial_fold_bit_for_bit(
        n in 1usize..3000,
        seed in 0u64..10_000,
        shards in 2usize..9,
    ) {
        let (users, slots, values) = hostile_columns(n, seed, 64);
        let batch = ReportBatch::from_columns(users, slots, values);
        let serial = collector(shards, 0);
        let serial_outcome = serial.ingest_outcome(&batch);
        prop_assert_eq!(
            serial_outcome.accepted + serial_outcome.dropped + serial_outcome.rejected,
            n as u64
        );
        for workers in [1usize, 2, 8] {
            let parallel = collector(shards, workers);
            let outcome = parallel.ingest_outcome(&batch);
            prop_assert_eq!(serial_outcome, outcome, "workers = {}", workers);
            assert_bit_identical(&serial, &parallel, &format!("workers = {workers}"));
        }
    }

    #[test]
    fn multi_batch_streams_agree_across_worker_counts(
        batches in 2usize..6,
        n in 16usize..600,
        seed in 0u64..10_000,
    ) {
        // Several batches through the same pool: descriptors, scratch and
        // injector are re-used batch over batch; ledgers and state must
        // keep agreeing with a serial collector fed the same stream.
        let serial = collector(4, 0);
        let parallel = collector(4, 2);
        for b in 0..batches {
            let (users, slots, values) = hostile_columns(n, seed ^ (b as u64) << 32, 64);
            let batch = ReportBatch::from_columns(users, slots, values);
            let serial_outcome = serial.ingest_outcome(&batch);
            let parallel_outcome = parallel.ingest_outcome(&batch);
            prop_assert_eq!(serial_outcome, parallel_outcome, "batch {}", b);
        }
        assert_bit_identical(&serial, &parallel, "multi-batch stream");
    }
}

/// The pool engages for real (not silently falling back to the serial
/// path): runs flow through the injector and the parallel-fold histogram
/// records every dispatched batch.
#[test]
fn pool_dispatch_is_observable_in_telemetry() {
    let c = collector(4, 2);
    let (users, slots, values) = hostile_columns(2048, 7, 64);
    let batch = ReportBatch::from_columns(users, slots, values);
    for _ in 0..5 {
        c.ingest_outcome(&batch);
    }
    let snap = c.telemetry().snapshot();
    // 4 shards × 5 batches, every shard touched by 2048 spread users.
    assert_eq!(snap.counter("collector.pool.runs"), Some(20));
    assert_eq!(
        snap.histogram("collector.ingest.fold_parallel_nanos")
            .expect("histogram registered")
            .count(),
        5
    );
    // Injector drained: the live depth gauge must read zero at rest.
    assert_eq!(snap.gauge("collector.pool.queue_depth"), Some(0));
}

/// Stopping the pool mid-stream must not lose or double-fold a single
/// run: submitter threads keep ingesting right through the shutdown, and
/// the final state equals a serial reference fed the same batches.
#[test]
fn pool_shutdown_mid_stream_loses_no_run() {
    const THREADS: u64 = 4;
    const BATCHES: u64 = 60;
    const REPORTS: usize = 1024;
    let parallel = Collector::new(CollectorConfig {
        shards: 4,
        max_slots: 64,
        ingest_workers: 4,
        parallel_fold_min: 1,
        ..CollectorConfig::default()
    });
    // Disjoint per-thread user universes, so each user's report order is
    // determined by its own thread and per-user state stays exactly
    // comparable to the serial reference below.
    let thread_batch = |t: u64, b: u64| {
        let mut batch = ReportBatch::with_capacity(REPORTS);
        let mut state = (t << 32) | (b + 1);
        for i in 0..REPORTS {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            batch.push(
                (t << 32) | (state >> 48),
                i as u64 % 64,
                ((state >> 11) % 4096) as f64 / 4096.0,
            );
        }
        batch
    };
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let parallel = &parallel;
            scope.spawn(move || {
                for b in 0..BATCHES {
                    let outcome = parallel.ingest_outcome(&thread_batch(t, b));
                    // The ledger stays exact even for batches racing the
                    // pool shutdown.
                    assert_eq!(
                        outcome,
                        IngestOutcome {
                            accepted: REPORTS as u64,
                            dropped: 0,
                            rejected: 0
                        }
                    );
                }
            });
        }
        // Drop the pool mid-stream, while submitters are in flight.
        std::thread::sleep(std::time::Duration::from_millis(2));
        parallel.stop_ingest_pool();
    });
    assert_eq!(parallel.total_reports(), THREADS * BATCHES * REPORTS as u64);

    let serial = Collector::new(CollectorConfig {
        shards: 4,
        max_slots: 64,
        ingest_workers: 0,
        ..CollectorConfig::default()
    });
    for t in 0..THREADS {
        for b in 0..BATCHES {
            serial.ingest(&thread_batch(t, b));
        }
    }
    // Per-user state is exactly comparable (disjoint users per thread);
    // cross-user slot sums depend on thread interleaving, so compare
    // counts there, not float bits.
    assert_eq!(serial.per_user_rows(), parallel.per_user_rows());
    let (a, b) = (serial.snapshot(), parallel.snapshot());
    assert_eq!(a.slot_count(), b.slot_count());
    for (x, y) in a.slots().iter().zip(b.slots()) {
        assert_eq!(x.count, y.count);
    }
}
