//! Component-interaction tests: sampling internals, high-dimensional
//! splits, the EM estimator, and the CSV loaders wired into the pipeline.

use integration_tests::test_rng;
use ldp_core::highdim::{publish_multidim, SplitStrategy};
use ldp_core::{optimal_sample_count, PpKind, Sampling, StreamMechanism};
use ldp_metrics::{cosine_distance, mse};
use ldp_streams::synthetic::{sin_multidim, volume};
use ldp_streams::{load_population_csv, load_stream_csv, Stream};
use std::io::Write as _;

/// The n_s optimizer truly minimizes the paper's objective
/// `n_s · Var(n_s, ε)`: its pick is never beaten by any other candidate.
#[test]
fn sample_count_minimizes_objective() {
    use ldp_core::sampling::variance_of_sample_variance;
    use ldp_mechanisms::SquareWave;
    for &(eps, w, q) in &[(1.0f64, 5usize, 60usize), (1.0, 50, 60), (3.0, 20, 30)] {
        let picked = optimal_sample_count(eps, w, q);
        let objective = |ns: usize| {
            let seg_len = (q / ns).max(1);
            let nw = w.div_ceil(seg_len).max(1);
            let sw = SquareWave::new(eps / nw as f64).unwrap();
            ns as f64 * variance_of_sample_variance(&sw, ns)
        };
        let best = objective(picked);
        for ns in 2..=q {
            if q / ns == 0 {
                break;
            }
            assert!(
                best <= objective(ns) + 1e-12,
                "(eps={eps}, w={w}, q={q}): picked {picked} beaten by {ns}"
            );
        }
    }
}

/// Segment replication: the published stream's distinct-value count equals
/// the segment count.
#[test]
fn sampling_publishes_exactly_ns_distinct_values() {
    let algo = Sampling::new(PpKind::Capp, 2.0, 10)
        .unwrap()
        .with_sample_count(5);
    let data = volume(400, 31);
    let out = algo.publish(&data.values()[..100], &mut test_rng(32));
    let mut distinct: Vec<f64> = out.clone();
    distinct.sort_by(f64::total_cmp);
    distinct.dedup();
    assert_eq!(distinct.len(), 5);
}

/// Budget-Split and Sample-Split both return one full-length stream per
/// dimension, and more budget improves both.
#[test]
fn highdim_strategies_improve_with_budget() {
    let series = sin_multidim(4, 200, 33);
    let mut rng = test_rng(34);
    for strategy in [SplitStrategy::BudgetSplit, SplitStrategy::SampleSplit] {
        let errs: Vec<f64> = [0.5, 16.0]
            .iter()
            .map(|&eps| {
                let published =
                    publish_multidim(&series, PpKind::App, strategy, eps, 10, &mut rng).unwrap();
                (0..4)
                    .map(|k| mse(&published[k], series.dim(k).values()))
                    .sum::<f64>()
            })
            .collect();
        assert!(
            errs[1] < errs[0],
            "{}: ε=16 error {} should beat ε=0.5 {}",
            strategy.label(),
            errs[1],
            errs[0]
        );
    }
}

/// CSV loaders feed the pipeline end to end: write a stream to disk, load
/// it, publish it, and verify structural invariants.
#[test]
fn csv_roundtrip_through_publication() {
    let mut path = std::env::temp_dir();
    path.push(format!("ldp_it_csv_{}.csv", std::process::id()));
    {
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "reading").unwrap();
        for i in 0..50 {
            writeln!(f, "{}", 10.0 + (i as f64 / 5.0).sin() * 3.0).unwrap();
        }
    }
    let stream = load_stream_csv(&path, 0, true).unwrap();
    assert_eq!(stream.len(), 50);
    assert!(stream.min() >= 0.0 && stream.max() <= 1.0);
    let capp = ldp_core::Capp::new(1.0, 10).unwrap();
    let out = capp.publish(stream.values(), &mut test_rng(35));
    assert_eq!(out.len(), 50);
    std::fs::remove_file(path).unwrap();
}

/// Population CSVs preserve user count and joint normalization through the
/// crowd pipeline.
#[test]
fn population_csv_through_crowd_estimation() {
    let mut path = std::env::temp_dir();
    path.push(format!("ldp_it_pop_{}.csv", std::process::id()));
    {
        let mut f = std::fs::File::create(&path).unwrap();
        for u in 0..20 {
            let row: Vec<String> = (0..30)
                .map(|t| format!("{}", u as f64 + (t as f64 / 3.0).cos()))
                .collect();
            writeln!(f, "{}", row.join(",")).unwrap();
        }
    }
    let pop = load_population_csv(&path, false).unwrap();
    assert_eq!(pop.len(), 20);
    let algo = ldp_core::App::new(4.0, 10).unwrap();
    let est = ldp_core::crowd::estimated_population_means(&pop, 0..30, &algo, &mut test_rng(36));
    assert_eq!(est.len(), 20);
    assert!(est.iter().all(|m| m.is_finite()));
    std::fs::remove_file(path).unwrap();
}

/// Cosine distance of published streams falls as the budget grows, for the
/// full PP family (Figure 5's monotone trend).
#[test]
fn cosine_distance_improves_with_budget() {
    let data = volume(1_000, 37);
    let slice = &data.values()[200..400];
    let mut rng = test_rng(38);
    for make in [
        |e: f64| Box::new(ldp_core::App::new(e, 10).unwrap()) as Box<dyn StreamMechanism>,
        |e: f64| Box::new(ldp_core::Capp::new(e, 10).unwrap()) as Box<dyn StreamMechanism>,
    ] {
        let avg = |eps: f64, rng: &mut rand::rngs::StdRng| {
            let algo = make(eps);
            (0..20)
                .map(|_| cosine_distance(&algo.publish(slice, rng), slice))
                .sum::<f64>()
                / 20.0
        };
        let lo = avg(0.5, &mut rng);
        let hi = avg(30.0, &mut rng);
        assert!(hi < lo, "ε=30 cosine {hi} should beat ε=0.5 {lo}");
    }
}

/// Streams built from iterators interoperate with every publisher.
#[test]
fn stream_construction_paths_agree() {
    let a: Stream = (0..10).map(|i| i as f64 / 10.0).collect();
    let b = Stream::new((0..10).map(|i| i as f64 / 10.0).collect());
    assert_eq!(a, b);
    let capp = ldp_core::Capp::new(1.0, 5).unwrap();
    let out_a = capp.publish(a.values(), &mut test_rng(39));
    let out_b = capp.publish(b.values(), &mut test_rng(39));
    assert_eq!(out_a, out_b);
}
