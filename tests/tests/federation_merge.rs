//! Property tests for the federation merge algebra:
//! [`MergedParts::merge`] over [`SnapshotPart`]s with *differing*
//! retention bases must be order-independent and associative (merging a
//! merge's [`MergedParts::to_part`] re-export agrees with the flat
//! merge) — the invariants that let routers stack and let a router fan
//! out to downstreams in any order.

use ldp_collector::{MergedParts, SlotStats, SnapshotPart};
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1.0)
}

/// An arbitrary well-formed part: `start >= retained_base`, dense slots
/// from `start`, `slot_end` covering them, non-negative stats.
fn part_strategy() -> impl Strategy<Value = SnapshotPart> {
    (
        0u64..20,                                          // retained_base
        0u64..6,                                           // start = base + this
        proptest::collection::vec(slot_strategy(), 0..12), // retained slots
        slot_strategy(),                                   // frozen prefix
        0u64..50,                                          // extra users
        0.0..100.0f64,                                     // user mean sum
    )
        .prop_map(|(base, start_off, slots, frozen, users, mean_sum)| {
            let start = base + start_off;
            let slot_end = start + slots.len() as u64;
            let retained: u64 = slots.iter().map(|s| s.count).sum();
            SnapshotPart {
                retained_base: base,
                slot_end: slot_end.max(base),
                start,
                slots,
                frozen,
                total_reports: retained + frozen.count,
                user_count: users,
                user_mean_sum: mean_sum,
            }
        })
}

fn slot_strategy() -> impl Strategy<Value = SlotStats> {
    (0u64..100, 0.0..50.0f64).prop_map(|(count, sum)| SlotStats {
        count,
        sum: if count == 0 { 0.0 } else { sum },
        sum_sq: if count == 0 { 0.0 } else { sum * 0.5 },
    })
}

/// Structural + numeric agreement between two merges of the same parts.
fn assert_merges_agree(a: &MergedParts, b: &MergedParts, what: &str) {
    assert_eq!(a.retained_base(), b.retained_base(), "{what}: base");
    assert_eq!(a.slot_end(), b.slot_end(), "{what}: end");
    assert_eq!(a.total_reports(), b.total_reports(), "{what}: totals");
    assert_eq!(a.user_count(), b.user_count(), "{what}: users");
    assert!(
        close(a.user_mean_sum(), b.user_mean_sum()),
        "{what}: user_mean_sum {} vs {}",
        a.user_mean_sum(),
        b.user_mean_sum()
    );
    let (fa, fb) = (a.frozen(), b.frozen());
    assert_eq!(fa.count, fb.count, "{what}: frozen count");
    assert!(close(fa.sum, fb.sum), "{what}: frozen sum");
    assert!(close(fa.sum_sq, fb.sum_sq), "{what}: frozen sum_sq");
    let (sa, sb) = (a.table().slots(), b.table().slots());
    assert_eq!(sa.len(), sb.len(), "{what}: slot span");
    for (i, (x, y)) in sa.iter().zip(sb).enumerate() {
        assert_eq!(x.count, y.count, "{what}: slot {i} count");
        assert!(close(x.sum, y.sum), "{what}: slot {i} sum");
        assert!(close(x.sum_sq, y.sum_sq), "{what}: slot {i} sum_sq");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merge order never matters: any permutation of the downstream
    /// replies yields the same federated answer.
    #[test]
    fn merge_is_order_independent(
        parts in proptest::collection::vec(part_strategy(), 1..6),
        seed in 0u64..1000,
    ) {
        let forward = MergedParts::merge(&parts);
        // A deterministic shuffle driven by the seed.
        let mut shuffled: Vec<&SnapshotPart> = parts.iter().collect();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let backward = MergedParts::merge(shuffled);
        assert_merges_agree(&forward, &backward, "permutation");
    }

    /// Associativity through `to_part`: pre-merging any prefix at an
    /// intermediate router and merging its re-export with the remaining
    /// parts agrees with the flat merge — so routers stack.
    #[test]
    fn merge_is_associative_through_to_part(
        parts in proptest::collection::vec(part_strategy(), 2..6),
        split_seed in 0usize..100,
    ) {
        let flat = MergedParts::merge(&parts);
        let split = 1 + split_seed % (parts.len() - 1);
        let left = MergedParts::merge(&parts[..split]).to_part();
        let nested_inputs: Vec<&SnapshotPart> =
            std::iter::once(&left).chain(&parts[split..]).collect();
        let nested = MergedParts::merge(nested_inputs);
        assert_merges_agree(&flat, &nested, "nested vs flat");
    }

    /// The merged anchor is the largest per-part base (every part still
    /// fully retains it), and no accepted report is ever lost to the
    /// anchoring: retained + frozen always re-totals.
    #[test]
    fn merge_anchors_at_largest_base_and_loses_nothing(
        parts in proptest::collection::vec(part_strategy(), 1..6),
    ) {
        let merged = MergedParts::merge(&parts);
        let max_base = parts.iter().map(|p| p.retained_base).max().unwrap();
        assert_eq!(merged.retained_base(), max_base);
        let fed_counted: u64 = merged.table().slots().iter().map(|s| s.count).sum::<u64>()
            + merged.frozen().count;
        let direct: u64 = parts
            .iter()
            .map(|p| p.slots.iter().map(|s| s.count).sum::<u64>() + p.frozen.count)
            .sum();
        assert_eq!(fed_counted, direct, "no report lost or duplicated by anchoring");
    }
}
