//! The two guarantees the collector subsystem rides on:
//!
//! 1. **Privacy** — an [`OnlineSession`] of any kind, run for any number
//!    of slots, never spends more than ε inside any window of `w` slots
//!    (the w-event guarantee, checked through its `WEventAccountant`).
//! 2. **Correctness** — a [`Collector`] snapshot built from fleet uploads
//!    agrees with the offline batch path
//!    (`crowd::estimated_population_means`) on per-user means and
//!    windowed population means.

use integration_tests::test_rng;
use ldp_collector::{
    ClientFleet, Collector, CollectorConfig, FleetConfig, ReportBatch, ReseedingSession,
};
use ldp_core::online::{OnlineSession, PipelineSpec, SessionKind};
use ldp_core::{crowd, StreamMechanism, WEventAccountant};
use ldp_streams::synthetic::{power_population, taxi_population};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Long-running sessions of every kind satisfy the w-event guarantee:
    /// every window of `w` slots spends at most ε (and the schedule
    /// saturates the budget once `w` slots have passed, so the guarantee
    /// is tight, not vacuous).
    #[test]
    fn online_sessions_never_exceed_window_budget(
        eps in 0.1..6.0f64,
        w in 1usize..40,
        slots in 1usize..300,
        seed in 0u64..500,
    ) {
        for spec in PipelineSpec::grid() {
            let mut session = OnlineSession::of_spec(spec, eps, w).unwrap();
            let mut rng = test_rng(seed);
            for t in 0..slots {
                let x = 0.5 + 0.4 * ((t as f64) / 9.0).sin();
                let _ = session.report(x, &mut rng);
            }
            let acc = session.accountant();
            prop_assert!(acc.satisfies_w_event(), "{} violates w-event", spec.label());
            prop_assert!(acc.max_window_spend() <= eps * (1.0 + 1e-9));
            if slots >= w {
                prop_assert!(
                    acc.max_window_spend() >= eps * (1.0 - 1e-9),
                    "{}: schedule should saturate the window budget",
                    spec.label()
                );
            }
        }
    }

    /// The accountant flags any schedule denser than ε/w, so the session
    /// invariant above is a real check, not an accountant blind spot.
    #[test]
    fn accountant_rejects_overdense_schedules(
        eps in 0.1..4.0f64,
        w in 2usize..30,
        overshoot in 1.01..3.0f64,
    ) {
        let mut acc = WEventAccountant::new(w, eps);
        for _ in 0..(2 * w) {
            acc.record(eps / w as f64 * overshoot);
        }
        prop_assert!(!acc.satisfies_w_event());
    }
}

/// Fleet → collector snapshots reproduce the offline batch path exactly
/// for EVERY pipeline cell (all 4 SessionKinds × all 5 MechanismKinds):
/// per-user means match `crowd::estimated_population_means` and the
/// windowed population mean matches the batch average, within 1e-9.
#[test]
fn snapshot_matches_batch_crowd_path_for_every_grid_cell() {
    let (users, slots) = (60, 40);
    let (epsilon, w, seed) = (2.5, 12, 0xBEEF);
    let range = 5..35;
    for spec in PipelineSpec::grid() {
        let population = taxi_population(users, slots, 31);
        let collector = Collector::new(CollectorConfig {
            shards: 6,
            ..CollectorConfig::default()
        });
        let fleet = ClientFleet::new(FleetConfig {
            spec,
            epsilon,
            w,
            seed,
            threads: 5,
        });
        let reports = fleet.drive(&population, range.clone(), &collector).unwrap();
        assert_eq!(reports as usize, users * range.len());
        assert_eq!(collector.rejected_reports(), 0, "{}", spec.label());

        let adapter = ReseedingSession::new(spec, epsilon, w, seed).unwrap();
        let batch = crowd::estimated_population_means(
            &population,
            range.clone(),
            &adapter,
            &mut test_rng(0),
        );

        let snapshot = collector.snapshot();
        let online = snapshot.per_user_means();
        assert_eq!(online.len(), batch.len());
        for (u, (a, b)) in online.iter().zip(&batch).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{}: user {u} online {a} vs batch {b}",
                spec.label()
            );
        }

        let batch_mean = batch.iter().sum::<f64>() / batch.len() as f64;
        let windowed = snapshot.windowed_mean(0..range.len()).unwrap();
        assert!(
            (windowed - batch_mean).abs() < 1e-9,
            "{}: windowed {windowed} vs batch {batch_mean}",
            spec.label()
        );
    }
}

/// Incremental ingestion is order- and batching-insensitive: slicing the
/// same reports into different batch shapes yields identical snapshots.
#[test]
fn ingestion_is_batching_insensitive() {
    let population = power_population(40, 30, 17);
    let whole = Collector::new(CollectorConfig {
        shards: 3,
        ..CollectorConfig::default()
    });
    let sliced = Collector::new(CollectorConfig {
        shards: 3,
        ..CollectorConfig::default()
    });
    let fleet = ClientFleet::new(FleetConfig {
        spec: PipelineSpec::sw(SessionKind::App),
        epsilon: 1.5,
        w: 6,
        seed: 9,
        threads: 1,
    });
    fleet.drive(&population, 0..30, &whole).unwrap();

    // Replay the same published values in per-slot mini-batches. The
    // adapter reseeds per publish call, so iterating users in order
    // reproduces the fleet's per-user streams.
    let adapter = ReseedingSession::new(PipelineSpec::sw(SessionKind::App), 1.5, 6, 9).unwrap();
    for (user, stream) in population.iter().enumerate() {
        let published = adapter.publish(stream.subsequence(0..30), &mut test_rng(0));
        for (slot, &value) in published.iter().enumerate() {
            let mut batch = ReportBatch::new();
            batch.push(user as u64, slot as u64, value);
            sliced.ingest(&batch);
        }
    }

    let (a, b) = (whole.snapshot(), sliced.snapshot());
    assert_eq!(a.total_reports(), b.total_reports());
    assert_eq!(a.per_user_means(), b.per_user_means());
    for slot in 0..30 {
        assert!((a.slot_mean(slot).unwrap() - b.slot_mean(slot).unwrap()).abs() < 1e-12);
    }
}

/// The crowd estimate actually converges: with a healthy budget the
/// collector's windowed population mean lands near the ground truth.
#[test]
fn windowed_population_mean_tracks_truth() {
    let population = taxi_population(400, 80, 23);
    let range = 10..70;
    let collector = Collector::default();
    let fleet = ClientFleet::new(FleetConfig {
        spec: PipelineSpec::sw(SessionKind::Capp),
        epsilon: 4.0,
        w: 10,
        seed: 1,
        threads: 8,
    });
    fleet.drive(&population, range.clone(), &collector).unwrap();
    let truth = crowd::true_windowed_population_mean(&population, range.clone());
    let online = collector.snapshot().windowed_mean(0..range.len()).unwrap();
    assert!(
        (online - truth).abs() < 0.05,
        "online {online} vs truth {truth}"
    );
}
