//! Schedule-exploration tests: the concurrent core under `ldp-check`'s
//! deterministic cooperative scheduler.
//!
//! Two tiers live here:
//!
//! * **Always-on** — the checker's own machinery, exercised through a
//!   distilled *known-buggy* pool fixture (completion counter released
//!   before the fold — exactly the ordering bug the real
//!   `RunDesc::fold` comment rules out): the explorer must find the
//!   injected bug, the recorded trace must replay to the identical
//!   failure, `LDP_CHECK_REPLAY` must work end to end across a process
//!   boundary, and the trace codec must round-trip (proptest).
//!   `ldp_check::sync` types work unconditionally, so these run in
//!   plain `cargo test`.
//! * **`cfg(ldp_check)`** — the *real* collector invariants: IngestPool
//!   exactly-once folds (bit-identical to serial under every explored
//!   schedule), shutdown-mid-stream losing nothing, and shard-epoch
//!   bump vs. `QueryEngine::refresh` consistency. These need the
//!   collector compiled against the instrumented facade:
//!   `RUSTFLAGS="--cfg ldp_check" cargo test --test schedule_exploration`.

use ldp_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use ldp_check::sync::{thread, Arc, Mutex};
use ldp_check::{check, explore, replay, Config, FailureKind, Trace};
use proptest::prelude::*;
use std::time::Duration;

const ITEMS: usize = 2;
const PARK: Duration = Duration::from_micros(50);

/// Distilled work-stealing pool round: a submitter enqueues `ITEMS` runs,
/// a worker drains them, the submitter parks until the completion counter
/// drains and then reads the folded result.
///
/// `buggy` injects the seeded regression: the worker releases the batch's
/// completion counter BEFORE folding its run, so a schedule that wakes
/// the submitter between the two observes `pending == 0` with a short
/// sum. The fixed variant folds first, exactly like the real
/// `RunDesc::fold`.
fn pool_round(buggy: bool) {
    let queue = Arc::new(Mutex::new((1..=ITEMS).collect::<Vec<usize>>()));
    let sum = Arc::new(AtomicUsize::new(0));
    let pending = Arc::new(AtomicUsize::new(ITEMS));
    let submitter = thread::current();

    let worker = {
        let queue = Arc::clone(&queue);
        let sum = Arc::clone(&sum);
        let pending = Arc::clone(&pending);
        thread::spawn(move || {
            for _ in 0..ITEMS {
                let item = loop {
                    if let Some(item) = queue.lock().unwrap().pop() {
                        break item;
                    }
                    thread::yield_now();
                };
                if buggy {
                    // BUG: completion released before the fold lands.
                    let prev = pending.fetch_sub(1, Ordering::AcqRel);
                    sum.fetch_add(item, Ordering::SeqCst);
                    if prev == 1 {
                        submitter.unpark();
                    }
                } else {
                    sum.fetch_add(item, Ordering::SeqCst);
                    let prev = pending.fetch_sub(1, Ordering::AcqRel);
                    if prev == 1 {
                        submitter.unpark();
                    }
                }
            }
        })
    };

    while pending.load(Ordering::Acquire) > 0 {
        thread::park_timeout(PARK);
    }
    assert_eq!(
        sum.load(Ordering::SeqCst),
        ITEMS * (ITEMS + 1) / 2,
        "batch completion released before fold"
    );
    worker.join().unwrap();
}

fn fixture_config() -> Config {
    Config::default().executions(500).seed(0xB0B)
}

#[test]
fn checker_finds_injected_pool_bug() {
    let outcome = explore(&fixture_config(), || pool_round(true));
    let failure = outcome
        .failure()
        .expect("the explorer must find the seeded completion-counter bug");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure
            .message
            .contains("batch completion released before fold"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(!failure.trace.is_empty());
}

#[test]
fn injected_bug_trace_replays_identically() {
    let failure = explore(&fixture_config(), || pool_round(true))
        .failure()
        .cloned()
        .expect("explorer should find the bug");
    // Replay twice: the failing interleaving must reproduce
    // deterministically, decision for decision.
    for round in 0..2 {
        let replayed = replay(&failure.trace, || pool_round(true));
        let rf = replayed.failure().expect("replay must fail identically");
        assert_eq!(rf.kind, FailureKind::Panic, "round {round}");
        assert_eq!(rf.message, failure.message, "round {round}");
        assert_eq!(rf.trace, failure.trace, "round {round}: same decisions");
    }
}

#[test]
fn fixed_pool_fixture_passes_exploration() {
    let outcome = explore(&fixture_config(), || pool_round(false));
    assert!(
        outcome.failure().is_none(),
        "fold-before-release must survive exploration: {:?}",
        outcome.failure()
    );
}

/// The `LDP_CHECK_REPLAY` end-to-end path: a recorded trace crosses a
/// process boundary through the environment variable and still replays
/// to the same panic. The child is this same test binary running
/// [`replay_target_for_e2e_child`] (a no-op unless `LDP_CHECK_E2E_CHILD`
/// is set).
#[test]
fn ldp_check_replay_env_replays_across_processes() {
    let failure = explore(&fixture_config(), || pool_round(true))
        .failure()
        .cloned()
        .expect("explorer should find the bug");
    let exe = std::env::current_exe().expect("own test binary path");
    let output = std::process::Command::new(exe)
        .args(["replay_target_for_e2e_child", "--exact", "--nocapture"])
        .env("LDP_CHECK_REPLAY", failure.trace.to_string())
        .env("LDP_CHECK_E2E_CHILD", "1")
        .output()
        .expect("spawn child test process");
    let combined = format!(
        "{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        !output.status.success(),
        "child replay should fail; output:\n{combined}"
    );
    assert!(
        combined.contains("batch completion released before fold"),
        "child must reproduce the original assertion; output:\n{combined}"
    );
    assert!(
        combined.contains("replayed Panic"),
        "failure must be reported by the replay path, not re-exploration:\n{combined}"
    );
}

/// Child half of [`ldp_check_replay_env_replays_across_processes`];
/// passes trivially when run as part of the normal suite.
#[test]
fn replay_target_for_e2e_child() {
    if std::env::var("LDP_CHECK_E2E_CHILD").is_err() {
        return;
    }
    check("buggy-pool-fixture", &fixture_config(), || pool_round(true));
}

/// Telemetry snapshot-vs-record consistency: a recorder bumps counters
/// with explicit scheduling points between them while a reader snapshots
/// the registry. A snapshot may be stale but never torn backwards: the
/// counter it reports is monotone across snapshots and lands exactly on
/// the recorded total.
#[test]
fn telemetry_snapshot_vs_record_consistency() {
    const BUMPS: u64 = 4;
    let outcome = explore(&Config::default().executions(300).seed(0x7e1e), || {
        let registry = Arc::new(ldp_telemetry::Registry::new());
        let counter = registry.counter("check.records");
        let done = Arc::new(AtomicBool::new(false));

        let recorder = {
            let done = Arc::clone(&done);
            thread::spawn(move || {
                for _ in 0..BUMPS {
                    counter.inc();
                    thread::yield_now();
                }
                done.store(true, Ordering::Release);
            })
        };

        let mut last = 0;
        loop {
            let finished = done.load(Ordering::Acquire);
            let seen = registry
                .snapshot()
                .counter("check.records")
                .expect("counter is registered");
            assert!(seen >= last, "snapshot went backwards: {seen} after {last}");
            last = seen;
            if finished {
                break;
            }
            thread::yield_now();
        }
        recorder.join().unwrap();
        let final_seen = registry
            .snapshot()
            .counter("check.records")
            .expect("counter is registered");
        assert_eq!(final_seen, BUMPS, "every record visible after join");
    });
    assert!(outcome.failure().is_none(), "{:?}", outcome.failure());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trace codec round trip: encode → parse → identical schedule.
    #[test]
    fn trace_codec_round_trips(decisions in proptest::collection::vec(0u32..u32::MAX, 0..200)) {
        let trace = Trace::from_decisions(decisions.clone());
        let encoded = trace.to_string();
        let parsed: Trace = encoded.parse().expect("well-formed trace must parse");
        prop_assert_eq!(parsed.decisions(), &decisions[..]);
    }
}

// ====================================================================
// Real-collector invariants: compiled only when the workspace is built
// with RUSTFLAGS="--cfg ldp_check", which routes the collector's sync
// facade to the instrumented types.
// ====================================================================

#[cfg(ldp_check)]
mod checked_collector {
    use super::*;
    use ldp_collector::{Collector, CollectorConfig, QueryEngine, ReportBatch};

    /// Executions per invariant. CI raises this to 1000+ via
    /// `LDP_CHECK_EXECUTIONS`.
    fn invariant_config(seed: u64) -> Config {
        Config::default().executions(200).seed(seed)
    }

    fn checked_collector(shards: usize, workers: usize) -> Collector {
        Collector::new(CollectorConfig {
            shards,
            max_slots: 64,
            ingest_workers: workers,
            parallel_fold_min: 1,
            ..CollectorConfig::default()
        })
    }

    fn small_batch() -> ReportBatch {
        let mut batch = ReportBatch::new();
        for row in 0..12u64 {
            // User ids chosen to spread across 3 shards.
            batch.push(row * 7 + 1, row % 5, (row as f64) / 16.0 - 0.3);
        }
        batch
    }

    /// IngestPool submit/steal never loses or double-folds a run, and the
    /// batch completion counter always drains: under every explored
    /// schedule a pooled fold returns an exact ledger and state
    /// bit-identical to a serial fold of the same batch.
    #[test]
    fn pool_fold_exactly_once_under_exploration() {
        check("pool-exactly-once", &invariant_config(0x9001), || {
            let batch = small_batch();
            let serial = checked_collector(3, 0);
            let serial_outcome = serial.ingest_outcome(&batch);

            let pooled = checked_collector(3, 2);
            let outcome = pooled.ingest_outcome(&batch);
            assert_eq!(outcome, serial_outcome, "ledger must be exact");
            assert_eq!(outcome.accepted, batch.len() as u64);
            assert_eq!(pooled.total_reports(), serial.total_reports());

            let (a, b) = (serial.snapshot(), pooled.snapshot());
            let bits_a: Vec<u64> = a.per_user_means().iter().map(|m| m.to_bits()).collect();
            let bits_b: Vec<u64> = b.per_user_means().iter().map(|m| m.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "per-user means bit-identical");
            assert_eq!(
                a.windowed_mean(0..5).map(f64::to_bits),
                b.windowed_mean(0..5).map(f64::to_bits),
                "windowed mean bit-identical"
            );
        });
    }

    /// Stopping the pool mid-stream loses nothing: a concurrent
    /// `stop_ingest_pool` may race the submit at any scheduling point,
    /// but the submitter's participation loop folds whatever workers no
    /// longer drain — the ledger stays exact.
    #[test]
    fn pool_shutdown_mid_stream_loses_nothing() {
        check("pool-shutdown-exact", &invariant_config(0x9002), || {
            let collector = Arc::new(checked_collector(3, 2));
            let stopper = {
                let collector = Arc::clone(&collector);
                thread::spawn(move || collector.stop_ingest_pool())
            };
            let batch = small_batch();
            let outcome = collector.ingest_outcome(&batch);
            assert_eq!(outcome.accepted, batch.len() as u64);
            assert_eq!(collector.total_reports(), batch.len() as u64);
            stopper.join().unwrap();
        });
    }

    /// Shard-epoch bump vs. `QueryEngine::refresh`: a concurrent refresher
    /// never observes a torn view — version and total-report counts are
    /// monotone while an ingester folds, and once the ingester is done a
    /// final refresh converges exactly on the collector's books.
    #[test]
    fn epoch_refresh_never_tears_under_exploration() {
        const BATCHES: u64 = 3;
        check(
            "epoch-refresh-consistency",
            &invariant_config(0x9003),
            || {
                let collector = Arc::new(checked_collector(3, 0));
                let engine = QueryEngine::new(Arc::clone(&collector));

                let ingester = {
                    let collector = Arc::clone(&collector);
                    thread::spawn(move || {
                        for b in 0..BATCHES {
                            let batch = ReportBatch::from_stream(b * 11 + 3, 0, &[0.25, -0.125]);
                            let outcome = collector.ingest_outcome(&batch);
                            assert_eq!(outcome.accepted, 2);
                        }
                    })
                };

                let mut last_version = 0;
                let mut last_total = 0;
                for _ in 0..4 {
                    engine.refresh();
                    let view = engine.view();
                    assert!(view.version() >= last_version, "version must be monotone");
                    assert!(
                        view.total_reports() >= last_total,
                        "report count must be monotone"
                    );
                    // Note: `view.total_reports() <= collector.total_reports()`
                    // does NOT hold mid-ingest and is deliberately not asserted:
                    // the checker found (seed 0xcfd4247fc79acc76, 1000-execution
                    // sweep) that `refresh` reads the shards directly while the
                    // collector's ledger is a telemetry counter bumped *after*
                    // the folds land, so a refresh in that window briefly runs
                    // ahead. The two agree exactly at quiescence, below.
                    last_version = view.version();
                    last_total = view.total_reports();
                }

                ingester.join().unwrap();
                engine.refresh();
                let view = engine.view();
                assert_eq!(view.total_reports(), BATCHES * 2);
                assert_eq!(view.total_reports(), collector.total_reports());
                let snap = collector.snapshot();
                assert_eq!(
                    view.windowed_mean(0..2).map(f64::to_bits),
                    snap.windowed_mean(0..2).map(f64::to_bits),
                    "live view agrees with snapshot after quiescence"
                );
            },
        );
    }
}

// ====================================================================
// Router coordination invariants: the fan-out primitives behind the
// federation ack barrier, under the same instrumented facade.
// ====================================================================

#[cfg(ldp_check)]
mod checked_router {
    use super::*;
    use ldp_router::{FanoutGate, FrameQueue};

    fn invariant_config(seed: u64) -> Config {
        Config::default().executions(200).seed(seed)
    }

    /// The federation ack barrier: `FanoutGate::wait` must not return
    /// before EVERY downstream link deposited its ledger — under every
    /// explored schedule, no ack can be sent upstream while any
    /// downstream's write is still in flight.
    #[test]
    fn fanout_gate_never_acks_early_under_exploration() {
        const LINKS: usize = 3;
        check("fanout-gate-barrier", &invariant_config(0xF0F0), || {
            let gate = Arc::new(FanoutGate::new(LINKS));
            let deposited = Arc::new(AtomicUsize::new(0));
            let links: Vec<_> = (0..LINKS)
                .map(|idx| {
                    let gate = Arc::clone(&gate);
                    let deposited = Arc::clone(&deposited);
                    thread::spawn(move || {
                        // The "write to downstream idx landed" point.
                        deposited.fetch_add(1, Ordering::SeqCst);
                        // Link 1 degrades; the others ack their index.
                        gate.deposit(idx, (idx != 1).then_some(idx as u64));
                    })
                })
                .collect();

            let ledgers = gate.wait();
            // The barrier property: by the time wait() returns, every
            // link's deposit has happened — no early ack is possible.
            assert_eq!(
                deposited.load(Ordering::SeqCst),
                LINKS,
                "wait() returned before every downstream deposited"
            );
            assert_eq!(ledgers, vec![Some(0), None, Some(2)]);
            for link in links {
                link.join().unwrap();
            }
        });
    }

    /// FIFO ordering through the link queue: a sync barrier pushed after
    /// ingest frames is popped after them — the property that makes an
    /// `IngestAck` cover everything the client sent before the sync.
    #[test]
    fn frame_queue_preserves_ingest_before_sync_order() {
        check("frame-queue-fifo", &invariant_config(0xF1F1), || {
            let queue = Arc::new(FrameQueue::new());
            let producer = {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    for msg in 0..3u32 {
                        assert!(queue.push(msg), "queue open while producing");
                    }
                    queue.close();
                })
            };
            let mut seen = Vec::new();
            while let Some(msg) = queue.pop() {
                seen.push(msg);
            }
            assert_eq!(seen, vec![0, 1, 2], "links must drain in push order");
            producer.join().unwrap();
        });
    }
}

// ====================================================================
// Crash-point exploration: the durability protocol under every crash
// the scheduler can reach. The WAL's instrumented crash points (append,
// flush, fsync, checkpoint write/rename/prune, seal) are armed, a
// checker-scheduled kill switch decides *where* the process "dies", and
// recovery from the surviving bytes must always yield a collector that
// is an exact prefix of the ingest history — every acked batch present,
// nothing double-counted.
// ====================================================================

#[cfg(ldp_check)]
mod checked_durability {
    use super::*;
    use ldp_collector::{Collector, CollectorConfig, ReportBatch};
    use ldp_server::durable::{self, FlushPolicy, WalConfig};
    use ldp_server::wire::{Frame, IngestScratch, HEADER_LEN};
    use std::path::PathBuf;

    const BATCHES: u64 = 4;
    const ROWS: u64 = 12;

    fn invariant_config(seed: u64) -> Config {
        Config::default().executions(200).seed(seed)
    }

    /// The kill switch the crash hook reads. The slot itself is a plain
    /// `std` lock (the hook must not create a scheduling point while
    /// holding it); the flag inside is a **checker** atomic, so the
    /// hook's load at each crash point *is* the scheduling decision the
    /// explorer permutes against the killer thread's store.
    #[allow(clippy::type_complexity)]
    static KILL_SWITCH: std::sync::RwLock<Option<Arc<AtomicBool>>> = std::sync::RwLock::new(None);

    fn install_hook_once() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            ldp_wal::install_crash_hook(|_point| {
                let flag = KILL_SWITCH
                    .read()
                    .expect("kill-switch slot poisoned")
                    .clone();
                match flag {
                    Some(flag) => flag.load(Ordering::Acquire),
                    None => false,
                }
            });
        });
    }

    /// Per-execution scratch directory. Deliberately a `std` counter:
    /// naming must not consume scheduler decisions.
    fn fresh_dir() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ldp-check-wal-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Serial fold order: recovered state must be bit-comparable to a
    /// reference fold, so no ingest pool.
    fn collector_config() -> CollectorConfig {
        CollectorConfig {
            shards: 3,
            max_slots: 64,
            ingest_workers: 0,
            ..CollectorConfig::default()
        }
    }

    /// Tiny segments + checkpoint-every-segment: a four-batch run crosses
    /// segment rolls and checkpoints, so the explorer reaches every crash
    /// point, not just append/sync.
    fn wal_config(dir: &PathBuf) -> WalConfig {
        WalConfig::new(dir)
            .flush(FlushPolicy::Barrier)
            .segment_bytes(256)
            .checkpoint_segments(1)
    }

    fn batch(salt: u64) -> ReportBatch {
        let mut b = ReportBatch::new();
        for row in 0..ROWS {
            b.push(
                salt * 100 + row % 6,
                row % 5,
                ((salt * 13 + row) % 32) as f64 / 32.0,
            );
        }
        b
    }

    fn ingest_payload(salt: u64) -> Vec<u8> {
        let mut framed = Vec::new();
        Frame::encode_ingest_into(&batch(salt), &mut framed);
        framed[HEADER_LEN..].to_vec()
    }

    /// The acceptance invariant: under EVERY explored crash schedule,
    /// recovery yields exactly the first `k` batches for some `k ≥` the
    /// number of acked (barrier-completed) batches — bit-identical to a
    /// reference fold of that prefix. No acked row lost, no row folded
    /// twice, never a partial batch.
    #[test]
    fn every_crash_schedule_recovers_an_acked_prefix_exactly() {
        install_hook_once();
        ldp_wal::arm_crash_points(true);
        check(
            "wal-crash-point-recovery",
            &invariant_config(0xDEAD),
            || {
                let dir = fresh_dir();
                let flag = Arc::new(AtomicBool::new(false));
                *KILL_SWITCH.write().expect("kill-switch slot poisoned") = Some(Arc::clone(&flag));

                let (collector, durability, _) =
                    durable::recover(collector_config(), wal_config(&dir)).expect("fresh recover");

                // Writer: the server's per-frame protocol — append+fold, then
                // barrier, then retention — counting batches whose barrier
                // (the ack precondition) completed before the "machine died".
                let writer = {
                    let collector = Arc::clone(&collector);
                    let durability = Arc::clone(&durability);
                    thread::spawn(move || {
                        let mut scratch = IngestScratch::default();
                        let mut acked = 0u64;
                        for salt in 0..BATCHES {
                            let payload = ingest_payload(salt);
                            if durability
                                .ingest_frame(&collector, &payload, &mut scratch)
                                .is_err()
                            {
                                break;
                            }
                            if durability.barrier().is_err() {
                                break;
                            }
                            acked += 1;
                            if durability.maybe_checkpoint(&collector).is_err() {
                                break;
                            }
                        }
                        acked
                    })
                };
                // Killer: one checker-scheduled store. Every interleaving of
                // this store with the writer's instrumented WAL operations is
                // a distinct crash location.
                let killer = {
                    let flag = Arc::clone(&flag);
                    thread::spawn(move || flag.store(true, Ordering::Release))
                };
                let acked = writer.join().unwrap();
                killer.join().unwrap();
                *KILL_SWITCH.write().expect("kill-switch slot poisoned") = None;

                // Power loss on top of the crash: buffered bytes vanish, the
                // active segment truncates to the fsync high-water mark.
                let _ = durability.simulate_power_loss();
                drop(durability);
                drop(collector);

                let (recovered, _, _) = durable::recover(collector_config(), wal_config(&dir))
                    .expect("recovery must succeed from any crash point");
                let total = recovered.total_reports();
                assert_eq!(total % ROWS, 0, "a torn batch must never fold");
                let k = total / ROWS;
                assert!(k >= acked, "acked batch lost: {k} survived < {acked} acked");
                assert!(k <= BATCHES, "phantom batches: {k} > {BATCHES} written");

                let reference = Collector::new(collector_config());
                for salt in 0..k {
                    reference.ingest_outcome(&batch(salt));
                }
                assert_eq!(
                    recovered.total_reports(),
                    reference.total_reports(),
                    "double-counted rows after recovery"
                );
                let (a, b) = (recovered.snapshot(), reference.snapshot());
                let bits_a: Vec<u64> = a.per_user_means().iter().map(|m| m.to_bits()).collect();
                let bits_b: Vec<u64> = b.per_user_means().iter().map(|m| m.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "recovered means must be bit-exact");
                assert_eq!(
                    a.windowed_mean(0..5).map(f64::to_bits),
                    b.windowed_mean(0..5).map(f64::to_bits),
                    "windowed mean bit-exact"
                );
                drop(recovered);
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
        ldp_wal::arm_crash_points(false);
    }
}
