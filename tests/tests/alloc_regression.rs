//! Allocation-regression pin for the zero-copy ingest fast path.
//!
//! The tentpole claim of the wire-path optimization is that the
//! steady-state per-frame pipeline — encode → header parse/verify →
//! borrowed decode → shard routing → fold — performs **zero heap
//! allocations** once its reusable buffers are warm. A throughput number
//! can regress quietly; an allocation count cannot: this test swaps in a
//! counting global allocator and asserts the steady state allocates
//! nothing at all.
//!
//! The counter is thread-local, so the other tests in this binary (and
//! any helper threads) cannot perturb the measurement.
//!
//! Telemetry rides along deliberately: the collector's ingest metrics
//! (fold-latency histogram, disposition counters) record inside
//! `ingest_outcome`, and `run_frame` additionally performs the server's
//! per-frame recording (decode timer, frame/byte counters) — so a pass
//! here proves the telemetry subsystem keeps the steady state
//! allocation-free *while enabled and recording*.

use ldp_collector::{Collector, CollectorConfig, ReportBatch};
use ldp_server::wire::{Frame, FrameView, Header, IngestScratch, HEADER_LEN};
use ldp_telemetry::{Counter, Histogram};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

/// Counts allocation events (alloc / alloc_zeroed / realloc) on the
/// current thread, delegating the actual memory management to [`System`].
struct CountingAllocator;

thread_local! {
    static ALLOCATION_EVENTS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    ALLOCATION_EVENTS.with(|c| c.set(c.get() + 1));
}

fn allocation_events() -> u64 {
    ALLOCATION_EVENTS.with(Cell::get)
}

// SAFETY: pure pass-through to `System`; the only addition is a
// thread-local event counter, which allocates nothing and upholds every
// `GlobalAlloc` contract by construction.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: caller upholds the `GlobalAlloc::alloc` contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        // SAFETY: caller upholds the `GlobalAlloc::alloc_zeroed` contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        // SAFETY: caller upholds the `GlobalAlloc::realloc` contract, and
        // `ptr` came from this allocator (which delegates to `System`).
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by this allocator with `layout`,
        // per the `GlobalAlloc::dealloc` contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A deterministic multi-user batch over a fixed user/slot universe, so
/// repeated frames revisit warm table entries instead of growing state.
fn steady_batch(reports: usize, users: u64, slots: u64, salt: u64) -> ReportBatch {
    let mut batch = ReportBatch::with_capacity(reports);
    let mut state = 0x2545_F491_4F6C_DD1Du64.wrapping_add(salt);
    for i in 0..reports {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        batch.push(
            (state >> 33) % users,
            i as u64 % slots,
            ((state >> 11) % 4096) as f64 / 4096.0,
        );
    }
    batch
}

/// The server's per-frame telemetry handles (same names serve.rs
/// registers), recorded by [`run_frame`] the way a connection thread
/// records them.
struct WireTelemetry {
    frames_decoded: Arc<Counter>,
    bytes_in: Arc<Counter>,
    decode_nanos: Arc<Histogram>,
}

impl WireTelemetry {
    fn register(collector: &Collector) -> Self {
        let registry = collector.telemetry();
        Self {
            frames_decoded: registry.counter("server.frames.decoded"),
            bytes_in: registry.counter("server.bytes.in"),
            decode_nanos: registry.histogram("server.frame.decode_nanos"),
        }
    }
}

/// One full frame trip: encode into `frame_buf`, then decode borrowed and
/// fold into `collector` through `scratch` — exactly the per-frame work a
/// server connection thread performs after its read buffers are filled,
/// including the telemetry recording (byte/frame counters around a
/// decode-latency timer; the fold timer records inside `ingest_outcome`).
fn run_frame(
    batch: &ReportBatch,
    frame_buf: &mut Vec<u8>,
    scratch: &mut IngestScratch,
    collector: &Collector,
    telemetry: &WireTelemetry,
) -> u64 {
    frame_buf.clear();
    Frame::encode_ingest_into(batch, frame_buf);
    let header = Header::parse(frame_buf[..HEADER_LEN].try_into().expect("header")).expect("parse");
    let payload = &frame_buf[HEADER_LEN..];
    telemetry.bytes_in.add(frame_buf.len() as u64);
    let decode_timer = telemetry.decode_nanos.timer();
    header.verify(payload).expect("checksum");
    let view = match FrameView::decode_body(header.frame_type, payload).expect("decode") {
        FrameView::Ingest(view) => view,
        other => panic!("expected ingest view, got {other:?}"),
    };
    drop(decode_timer);
    telemetry.frames_decoded.inc();
    collector.note_upstream_rejections(view.rejected_upstream());
    let columns = view.columns(scratch);
    collector.ingest_outcome(&columns).accepted
}

#[test]
fn steady_state_ingest_path_performs_zero_allocations() {
    // Multi-shard so the thread-local routing scratch is exercised too
    // (a single-shard collector skips it entirely).
    let collector = Collector::new(CollectorConfig {
        shards: 4,
        ..CollectorConfig::default()
    });
    let batch = steady_batch(4096, 512, 64, 7);
    let mut frame_buf = Vec::new();
    let mut scratch = IngestScratch::default();
    let telemetry = WireTelemetry::register(&collector);

    // Warmup: grows the frame buffer, the decode scratch, the routing
    // scratch, each shard's slot window, and every user-table entry.
    for _ in 0..8 {
        assert_eq!(
            run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry),
            batch.len() as u64
        );
    }

    let before = allocation_events();
    let mut accepted = 0u64;
    for _ in 0..32 {
        accepted += run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry);
    }
    let after = allocation_events();

    assert_eq!(accepted, 32 * batch.len() as u64, "every report folded");
    assert_eq!(
        after - before,
        0,
        "steady-state decode → route → fold — telemetry included — \
         must not touch the heap"
    );

    // The registry observed every frame (recording worked, it wasn't
    // no-op'd away): one fold + one decode sample and one frame count per
    // trip, and the accepted counter is the collector's own ledger.
    let snap = collector.telemetry().snapshot();
    assert_eq!(snap.counter("server.frames.decoded"), Some(40));
    assert_eq!(
        snap.histogram("collector.ingest.fold_nanos")
            .unwrap()
            .count(),
        40
    );
    assert_eq!(
        snap.histogram("server.frame.decode_nanos").unwrap().count(),
        40
    );
    assert_eq!(
        snap.counter("collector.reports.accepted"),
        Some(40 * batch.len() as u64)
    );
}

#[test]
fn parallel_fold_steady_state_performs_zero_allocations() {
    // Pool enabled and engaged: the batch clears `parallel_fold_min`, so
    // every measured frame dispatches its runs through the work-stealing
    // injector. Run descriptors live on the submitter's stack, the
    // injector is a pre-allocated bounded ring, and the completion wait
    // is park/unpark — none of which may touch the heap. (The counter is
    // thread-local, so worker threads could not hide an allocation of
    // ours; the submitter path is what this pins.)
    let collector = Collector::new(CollectorConfig {
        shards: 4,
        ingest_workers: 2,
        parallel_fold_min: 1024,
        ..CollectorConfig::default()
    });
    let batch = steady_batch(8192, 512, 64, 11);
    let mut frame_buf = Vec::new();
    let mut scratch = IngestScratch::default();
    let telemetry = WireTelemetry::register(&collector);

    // Warmup additionally spawns the pool (lazily, on the first
    // qualifying batch) and lets every worker reach its steady loop.
    for _ in 0..8 {
        assert_eq!(
            run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry),
            batch.len() as u64
        );
    }

    let before = allocation_events();
    let mut accepted = 0u64;
    for _ in 0..32 {
        accepted += run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry);
    }
    let after = allocation_events();

    assert_eq!(accepted, 32 * batch.len() as u64, "every report folded");
    assert_eq!(
        after - before,
        0,
        "parallel dispatch — enqueue, participate, park/unpark — must not \
         touch the heap"
    );

    // Prove the parallel path actually ran for all 40 frames: 4 runs per
    // frame through the injector, one parallel-fold sample each.
    let snap = collector.telemetry().snapshot();
    assert_eq!(snap.counter("collector.pool.runs"), Some(160));
    assert_eq!(
        snap.histogram("collector.ingest.fold_parallel_nanos")
            .unwrap()
            .count(),
        40
    );
    assert_eq!(snap.gauge("collector.pool.queue_depth"), Some(0));
}

#[test]
fn single_shard_fast_path_is_also_allocation_free() {
    let collector = Collector::new(CollectorConfig {
        shards: 1,
        ..CollectorConfig::default()
    });
    let batch = steady_batch(2048, 256, 32, 21);
    let mut frame_buf = Vec::new();
    let mut scratch = IngestScratch::default();
    let telemetry = WireTelemetry::register(&collector);
    for _ in 0..8 {
        run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry);
    }
    let before = allocation_events();
    for _ in 0..32 {
        run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry);
    }
    assert_eq!(allocation_events() - before, 0);
}

#[test]
fn screening_on_the_routing_pass_allocates_nothing_either() {
    // Dropped (slot out of bounds) and rejected (non-finite) reports take
    // the screening branches of the routing pass; those must be as
    // allocation-free as the accept branch.
    let collector = Collector::new(CollectorConfig {
        shards: 2,
        max_slots: 16,
        ..CollectorConfig::default()
    });
    let mut users = Vec::new();
    let mut slots = Vec::new();
    let mut values = Vec::new();
    for i in 0..1024u64 {
        users.push(i % 64);
        slots.push(i % 24); // one in three lands at or above max_slots
        values.push(if i % 5 == 0 { f64::NAN } else { 0.25 });
    }
    let batch = ReportBatch::from_columns(users, slots, values);
    let mut frame_buf = Vec::new();
    let mut scratch = IngestScratch::default();
    let telemetry = WireTelemetry::register(&collector);
    for _ in 0..8 {
        run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry);
    }
    let before = allocation_events();
    for _ in 0..16 {
        run_frame(&batch, &mut frame_buf, &mut scratch, &collector, &telemetry);
    }
    assert_eq!(allocation_events() - before, 0);
    assert!(
        collector.dropped_reports() > 0,
        "screening branch exercised"
    );
    assert!(collector.rejected_reports() > 0);
}

#[test]
fn wal_batched_ingest_path_performs_zero_allocations() {
    // The durability acceptance bar: with the WAL in batched flush mode,
    // the per-frame path gains append → buffer-copy → (rare) flush and
    // must stay allocation-free. A huge flush interval and segment size
    // keep fsync, segment roll, and checkpoint out of the measured
    // window; the WAL's own write buffer warms to its high-water capacity
    // during warmup, after which appends only copy into it.
    use ldp_server::durable::{self, FlushPolicy, WalConfig};
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("ldp-alloc-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_config = WalConfig::new(&dir)
        .flush(FlushPolicy::Batched(Duration::from_secs(3600)))
        .segment_bytes(1 << 30);
    let (collector, durability, _) = durable::recover(
        CollectorConfig {
            shards: 4,
            ..CollectorConfig::default()
        },
        wal_config,
    )
    .expect("fresh durable collector");

    let batch = steady_batch(4096, 512, 64, 33);
    let mut frame_buf = Vec::new();
    let mut scratch = IngestScratch::default();
    frame_buf.clear();
    Frame::encode_ingest_into(&batch, &mut frame_buf);
    let payload = &frame_buf[HEADER_LEN..];

    // Warmup: user tables, routing scratch, and the WAL write buffer.
    for _ in 0..8 {
        let outcome = durability
            .ingest_frame(&collector, payload, &mut scratch)
            .expect("durable ingest");
        assert_eq!(outcome.accepted, batch.len() as u64);
    }

    let before = allocation_events();
    let mut accepted = 0u64;
    for _ in 0..32 {
        accepted += durability
            .ingest_frame(&collector, payload, &mut scratch)
            .expect("durable ingest")
            .accepted;
    }
    let after = allocation_events();

    assert_eq!(accepted, 32 * batch.len() as u64, "every report folded");
    assert_eq!(
        after - before,
        0,
        "WAL append (batched mode) → decode → fold must not touch the heap"
    );
    assert_eq!(durability.appended_records(), 40);

    drop(durability);
    let _ = std::fs::remove_dir_all(&dir);
}
