//! End-to-end guarantees of the framed TCP service:
//!
//! 1. **Transport transparency** — a fleet driven through
//!    `RemoteCollector` → loopback TCP → `Server` → `Collector` agrees
//!    with the in-process path to ≤ 1e-9 on `population_mean` and every
//!    windowed slot mean, for the same seeded report stream.
//! 2. **Robustness** — malformed frames (garbage, truncation, bad
//!    checksum, wrong version, hostile lengths) are rejected without
//!    panicking, and only the offending connection is closed: other
//!    connections keep ingesting and querying.
//! 3. **Accounting** — the server's stats frame reports exactly what the
//!    collector and the connection ledgers saw.

use ldp_collector::{ClientFleet, Collector, CollectorConfig, FleetConfig, ReportBatch};
use ldp_core::online::{PipelineSpec, SessionKind};
use ldp_server::wire::{checksum, code, Frame, HEADER_LEN, MAGIC, WIRE_VERSION};
use ldp_server::{drive_fleet_loopback, RemoteCollector, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn server(shards: usize) -> Server {
    let collector = Arc::new(Collector::new(CollectorConfig {
        shards,
        ..CollectorConfig::default()
    }));
    Server::bind(collector, ServerConfig::default()).expect("bind loopback")
}

fn fleet(threads: usize, seed: u64) -> ClientFleet {
    ClientFleet::new(FleetConfig {
        spec: PipelineSpec::sw(SessionKind::Capp),
        epsilon: 2.0,
        w: 8,
        seed,
        threads,
    })
}

/// The satellite agreement test: remote-vs-in-process ≤ 1e-9.
#[test]
fn remote_fleet_agrees_with_in_process_fleet() {
    let (users, slots) = (60, 40);
    let population = ldp_streams::synthetic::taxi_population(users, slots, 21);
    let fleet = fleet(4, 1234);

    // In-process reference.
    let local = Collector::new(CollectorConfig {
        shards: 4,
        ..CollectorConfig::default()
    });
    let local_accepted = fleet.drive(&population, 0..slots, &local).unwrap();
    let reference = local.snapshot();

    // Remote path over real loopback TCP.
    let srv = server(4);
    let remote_accepted = drive_fleet_loopback(&fleet, &population, 0..slots, &srv).unwrap();
    assert_eq!(remote_accepted, local_accepted, "every report arrived");

    // Queries answered over the wire agree with the local snapshot.
    let mut client = RemoteCollector::connect(srv.local_addr()).unwrap();
    let remote_pop = client.population_mean().unwrap().unwrap();
    let local_pop = reference.population_mean().unwrap();
    assert!(
        (remote_pop - local_pop).abs() <= 1e-9,
        "population mean drifted over the wire: {remote_pop} vs {local_pop}"
    );
    // Windowed means: every window of width w, plus the full range.
    let w = 8usize;
    for start in 0..=(slots - w) {
        let remote = client
            .windowed_mean(start as u64..(start + w) as u64)
            .unwrap()
            .unwrap();
        let local = reference.windowed_mean(start..start + w).unwrap();
        assert!(
            (remote - local).abs() <= 1e-9,
            "window {start}..{}: {remote} vs {local}",
            start + w
        );
    }
    let remote_full = client.windowed_mean(0..slots as u64).unwrap().unwrap();
    let local_full = reference.windowed_mean(0..slots).unwrap();
    assert!((remote_full - local_full).abs() <= 1e-9);

    // Per-slot means agree slot-for-slot.
    let means = client.slot_means(0..slots as u64).unwrap();
    assert_eq!(means.len(), slots);
    for (slot, remote) in means.iter().enumerate() {
        let local = reference.slot_mean(slot).unwrap();
        assert!((remote.unwrap() - local).abs() <= 1e-9, "slot {slot}");
    }

    // The server-side collector is *exactly* as populated as the local
    // one on per-user state (each user's reports ride one connection, so
    // per-user sums are order-identical).
    let served = srv.collector().snapshot();
    assert_eq!(served.total_reports(), reference.total_reports());
    assert_eq!(served.per_user_means(), reference.per_user_means());

    // Summary + stats frames account for everything.
    let summary = client.summary().unwrap();
    assert_eq!(summary.total_reports, local_accepted);
    assert_eq!(summary.user_count, users as u64);
    assert_eq!(summary.slot_end, slots as u64);
    let stats = client.server_stats().unwrap();
    assert_eq!(stats.accepted_reports, local_accepted);
    assert_eq!(stats.dropped_reports, 0);
    assert_eq!(stats.frames_failed, 0);
    assert!(
        stats.frames_decoded >= users as u64,
        "one ingest frame per user"
    );
    assert!(stats.queries_answered > 0);
}

/// Ingest acks carry the per-connection disposition ledger, and
/// client-side rejections reach the server's books.
#[test]
fn ingest_sync_ledger_accounts_for_drops_and_rejects() {
    let collector = Arc::new(Collector::new(CollectorConfig {
        shards: 2,
        max_slots: 100,
        ..CollectorConfig::default()
    }));
    let srv = Server::bind(collector, ServerConfig::default()).unwrap();
    let mut client = RemoteCollector::connect(srv.local_addr()).unwrap();

    let mut batch = ReportBatch::new();
    batch.push(1, 0, 0.5); // accepted
    batch.push(2, 500, 0.5); // dropped (slot ≥ max_slots)
    batch.push(3, 1, f64::NAN); // rejected client-side, never enters the batch
    batch.push(4, 2, 0.25); // accepted
    client.ingest(&batch).unwrap();
    let totals = client.sync().unwrap();
    assert_eq!(totals.accepted, 2);
    assert_eq!(totals.dropped, 1);
    assert_eq!(totals.rejected, 1, "client-side NaN reaches the ledger");

    let stats = client.server_stats().unwrap();
    assert_eq!(stats.accepted_reports, 2);
    assert_eq!(stats.dropped_reports, 1);
    assert_eq!(stats.rejected_reports, 1);

    // A NaN smuggled around ReportBatch::push (raw columns, as a buggy
    // client could) is still screened server-side.
    let poison = ReportBatch::from_columns(vec![9], vec![3], vec![f64::INFINITY]);
    client.ingest(&poison).unwrap();
    let totals = client.sync().unwrap();
    assert_eq!(totals.rejected, 2);
    assert!(srv
        .collector()
        .snapshot()
        .slots()
        .iter()
        .all(|s| s.sum.is_finite()));
}

/// Malformed input closes only the offending connection; a healthy
/// connection opened before keeps working, and the server never panics.
#[test]
fn malformed_frames_reject_without_killing_other_connections() {
    let srv = server(2);
    let addr = srv.local_addr();
    let mut healthy = RemoteCollector::connect(addr).unwrap();
    healthy
        .ingest(&ReportBatch::from_stream(1, 0, &[0.5, 0.75]))
        .unwrap();
    assert_eq!(healthy.sync().unwrap().accepted, 2);

    let expect_error_then_close = |raw: &[u8], what: &str| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        // The server answers with an error frame, then closes.
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        let (frame, _) = Frame::decode(&reply, ldp_server::wire::DEFAULT_MAX_PAYLOAD)
            .unwrap_or_else(|e| {
                panic!(
                    "{what}: server reply not a frame ({e}); got {} bytes",
                    reply.len()
                )
            });
        match frame {
            Frame::Error { code: c, .. } => assert_eq!(c, code::MALFORMED, "{what}"),
            other => panic!("{what}: expected error frame, got {other:?}"),
        }
    };

    // Garbage that is not even a header.
    expect_error_then_close(&[0xAB; HEADER_LEN], "garbage header");

    // Unknown version byte.
    let mut bad_version = Frame::IngestSync.encode();
    bad_version[4] = WIRE_VERSION + 7;
    expect_error_then_close(&bad_version, "unknown version");

    // Corrupt payload checksum.
    let mut bad_sum = Frame::QueryWindowedMean { start: 0, end: 4 }.encode();
    let last = bad_sum.len() - 1;
    bad_sum[last] ^= 0xFF;
    expect_error_then_close(&bad_sum, "bad checksum");

    // Oversized length field: rejected before any allocation.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&MAGIC);
    oversized.push(WIRE_VERSION);
    oversized.push(2); // IngestSync
    oversized.extend_from_slice(&[0, 0]);
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    oversized.extend_from_slice(&checksum(&[]).to_le_bytes());
    expect_error_then_close(&oversized, "oversized length");

    // Unknown frame type.
    let mut unknown = Frame::IngestSync.encode();
    unknown[5] = 250;
    expect_error_then_close(&unknown, "unknown frame type");

    // Truncated frame: header promises payload, peer hangs up early.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let full = Frame::QueryWindowedMean { start: 0, end: 4 }.encode();
        stream.write_all(&full[..full.len() - 3]).unwrap();
        drop(stream); // EOF mid-payload
    }

    // Through all of that, the healthy connection still serves.
    healthy
        .ingest(&ReportBatch::from_stream(2, 0, &[0.25, 0.5]))
        .unwrap();
    assert_eq!(healthy.sync().unwrap().accepted, 4);
    assert!(healthy.population_mean().unwrap().is_some());
    // The truncated-EOF connection races the accept loop: poll until the
    // server has processed (and counted) all six malformed streams.
    let mut stats = healthy.server_stats().unwrap();
    for _ in 0..200 {
        if stats.frames_failed >= 6 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        stats = healthy.server_stats().unwrap();
    }
    assert!(
        stats.frames_failed >= 6,
        "each malformed stream counted: {stats:?}"
    );
    assert_eq!(srv.collector().total_reports(), 4);
}

/// Query-level errors (bad arguments) keep the connection open.
#[test]
fn bad_queries_error_but_do_not_close_the_connection() {
    let srv = server(1);
    let mut client = RemoteCollector::connect(srv.local_addr()).unwrap();
    client
        .ingest(&ReportBatch::from_stream(1, 0, &[0.5]))
        .unwrap();
    client.sync().unwrap();

    // Inverted/empty ranges are refused…
    let err = client.windowed_mean(5..5).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    #[allow(clippy::reversed_empty_ranges)] // the inverted range IS the test
    let err = client.slot_means(9..3).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // …as is a range that would force a huge response allocation.
    let err = client.slot_means(0..u64::MAX).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // The same connection keeps answering well-formed queries.
    assert!(client.windowed_mean(0..1).unwrap().is_some());
    assert_eq!(client.summary().unwrap().total_reports, 1);
}

/// The connection limit turns extra clients away with a BUSY error frame
/// while existing connections keep working, and graceful shutdown joins
/// everything.
#[test]
fn connection_limit_and_graceful_shutdown() {
    let collector = Arc::new(Collector::new(CollectorConfig {
        shards: 1,
        ..CollectorConfig::default()
    }));
    let mut srv = Server::bind(
        collector,
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = srv.local_addr();

    let mut first = RemoteCollector::connect(addr).unwrap();
    first
        .ingest(&ReportBatch::from_stream(1, 0, &[0.5]))
        .unwrap();
    assert_eq!(first.sync().unwrap().accepted, 1);

    // Second connection: refused with BUSY (the refusal frame may race
    // the accept loop, so poll until the counter shows it).
    let mut refused = false;
    for _ in 0..50 {
        let mut second = match RemoteCollector::connect(addr) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match second.population_mean() {
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                refused = true;
                break;
            }
            // Connection dropped without a frame, or raced shutdown of a
            // previous refusal — retry.
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    assert!(refused, "over-limit connection was never refused with BUSY");
    assert!(srv.stats().rejected_connections >= 1);

    // The first connection is untouched by the refusals.
    assert!(first.population_mean().unwrap().is_some());

    srv.shutdown(); // idempotent, joins accept/refresher/conn threads
    srv.shutdown();
}
