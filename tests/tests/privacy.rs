//! Privacy-facing integration tests: w-event accounting schedules and the
//! pointwise ε-LDP density bound for every mechanism.

use integration_tests::test_rng;
use ldp_core::{optimal_sample_count, PpKind, Sampling, WEventAccountant};
use ldp_mechanisms::{Hybrid, Laplace, Mechanism, Piecewise, SquareWave, StochasticRounding};
use ldp_streams::are_w_neighboring;

/// Every mechanism's output density must satisfy f(y|x) ≤ e^ε·f(y|x')
/// pointwise over an input × input × output grid.
#[test]
fn all_mechanisms_satisfy_pointwise_ldp_bound() {
    let eps: f64 = 0.8;
    let bound = eps.exp() * (1.0 + 1e-9);
    let mechanisms: Vec<(&str, Box<dyn Mechanism>)> = vec![
        ("sw", Box::new(SquareWave::new(eps).unwrap())),
        ("laplace", Box::new(Laplace::new(eps).unwrap())),
        ("sr", Box::new(StochasticRounding::new(eps).unwrap())),
        ("pm", Box::new(Piecewise::new(eps).unwrap())),
        ("hm", Box::new(Hybrid::new(eps).unwrap())),
    ];
    for (name, mech) in &mechanisms {
        let dom = mech.input_domain();
        let out = mech.output_domain();
        let (olo, ohi) = if out.width().is_finite() {
            (out.lo(), out.hi())
        } else {
            (-10.0, 10.0)
        };
        let mut ys: Vec<f64> = (0..=40)
            .map(|k| olo + (ohi - olo) * k as f64 / 40.0)
            .collect();
        // Include SR's atoms exactly.
        if let Ok(sr) = StochasticRounding::new(eps) {
            ys.push(sr.c());
            ys.push(-sr.c());
        }
        for i in 0..=10 {
            for j in 0..=10 {
                let x1 = dom.lo() + dom.width() * i as f64 / 10.0;
                let x2 = dom.lo() + dom.width() * j as f64 / 10.0;
                for &y in &ys {
                    let f1 = mech.density(x1, y);
                    let f2 = mech.density(x2, y);
                    if f2 > 0.0 {
                        assert!(
                            f1 / f2 <= bound,
                            "{name}: ratio {} at x1={x1} x2={x2} y={y}",
                            f1 / f2
                        );
                    } else {
                        assert_eq!(f1, 0.0, "{name}: support mismatch at y={y}");
                    }
                }
            }
        }
    }
}

/// The uniform ε/w schedule used by IPP/APP/CAPP/SW-direct exactly fills
/// (and never exceeds) the window budget.
#[test]
fn per_slot_schedule_satisfies_w_event() {
    let (eps, w, len) = (2.0, 15, 200);
    let mut acc = WEventAccountant::new(w, eps);
    for _ in 0..len {
        acc.record(eps / w as f64);
    }
    assert!(acc.satisfies_w_event());
    assert!((acc.max_window_spend() - eps).abs() < 1e-9);
}

/// The PP-S schedule (one upload per segment at ε/n_w) also respects the
/// window budget for every (q, ns) combination the optimizer can pick.
#[test]
fn sampling_schedule_satisfies_w_event() {
    let eps = 1.0;
    for &(w, q) in &[(10usize, 30usize), (20, 40), (30, 10), (5, 100)] {
        let ns = optimal_sample_count(eps, w, q);
        let seg_len = (q / ns).max(1);
        let sampler = Sampling::new(PpKind::App, eps, w).unwrap();
        let eps_upload = sampler.upload_epsilon(q);
        let mut acc = WEventAccountant::new(w, eps);
        for t in 0..q {
            // Uploads land at the first slot of each segment.
            acc.record(if t % seg_len == 0 && t / seg_len < ns {
                eps_upload
            } else {
                0.0
            });
        }
        assert!(
            acc.satisfies_w_event(),
            "w={w} q={q} ns={ns}: window spend {}",
            acc.max_window_spend()
        );
    }
}

/// Definition 2 sanity on real streams: perturbing a w-length burst of a
/// stream yields a w-neighboring stream; spreading the change does not.
#[test]
fn w_neighboring_matches_definition_on_streams() {
    let base = ldp_streams::synthetic::sinusoidal(100, 0.05);
    let mut burst = base.values().to_vec();
    for slot in burst.iter_mut().skip(40).take(10) {
        *slot = 1.0 - *slot;
    }
    assert!(are_w_neighboring(base.values(), &burst, 10));
    assert!(!are_w_neighboring(base.values(), &burst, 9));
}

/// Clipping/normalization in CAPP is deterministic pre-processing: two
/// streams differing in one window produce outputs whose supports coincide
/// (no value leaks through support mismatch).
#[test]
fn capp_outputs_share_support_for_neighboring_streams() {
    let capp = ldp_core::Capp::new(1.0, 10).unwrap();
    let mut rng = test_rng(3);
    let a = vec![0.2; 50];
    let mut b = a.clone();
    for slot in b.iter_mut().skip(20).take(10) {
        *slot = 0.9;
    }
    let out_a = capp.publish_raw(&a, &mut rng);
    let out_b = capp.publish_raw(&b, &mut rng);
    let bounds = capp.bounds();
    let sw_b = SquareWave::new(0.1).unwrap().b();
    let width = bounds.u() - bounds.l();
    let (lo, hi) = (bounds.l() - sw_b * width, bounds.u() + sw_b * width);
    for y in out_a.iter().chain(&out_b) {
        assert!(*y >= lo - 1e-9 && *y <= hi + 1e-9);
    }
}
