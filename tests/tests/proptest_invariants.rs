//! Property-based tests over the public API: randomized budgets, windows,
//! and streams must never break the structural invariants.

use ldp_core::{
    optimal_sample_count, sma, App, Capp, ClipBounds, Ipp, PpKind, Sampling, StreamMechanism,
    WEventAccountant,
};
use ldp_mechanisms::{Mechanism, SquareWave};
use ldp_streams::are_w_neighboring;
use proptest::prelude::*;
use rand::SeedableRng;

fn stream_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..=1.0f64, 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Publication never changes the stream length and never emits NaN.
    #[test]
    fn publish_preserves_length_and_finiteness(
        xs in stream_strategy(),
        eps in 0.05..5.0f64,
        w in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let algos: Vec<Box<dyn StreamMechanism>> = vec![
            Box::new(Ipp::new(eps, w).unwrap()),
            Box::new(App::new(eps, w).unwrap()),
            Box::new(Capp::new(eps, w).unwrap()),
            Box::new(Sampling::new(PpKind::App, eps, w).unwrap()),
        ];
        for algo in algos {
            let out = algo.publish(&xs, &mut rng);
            prop_assert_eq!(out.len(), xs.len());
            prop_assert!(out.iter().all(|y| y.is_finite()));
        }
    }

    /// SW outputs always stay in [−b, 1+b], for any ε and any input.
    #[test]
    fn sw_outputs_in_domain(eps in 0.01..8.0f64, x in -2.0..3.0f64, seed in 0u64..500) {
        let sw = SquareWave::new(eps).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let y = sw.perturb(x, &mut rng);
        prop_assert!(sw.output_domain().contains(y));
    }

    /// SW's exact moment integration matches the paper's closed forms for
    /// every ε: E[SW(x)] from raw_moment and the worst-case deviation
    /// variance.
    #[test]
    fn sw_moments_match_closed_forms(eps in 0.02..6.0f64, x in 0.0..=1.0f64) {
        let sw = SquareWave::new(eps).unwrap();
        prop_assert!((sw.raw_moment(x, 1) - sw.expected_output(x)).abs() < 1e-9);
        prop_assert!(
            (sw.deviation_variance(1.0) - sw.worst_case_deviation_variance()).abs() < 1e-8
        );
        // deviation mean closed form vs direct difference
        prop_assert!((sw.deviation_mean(x) - (x - sw.expected_output(x))).abs() < 1e-9);
    }

    /// SMA output is bounded by the input extrema and preserves length.
    #[test]
    fn sma_bounded_by_extrema(xs in stream_strategy(), window in 0usize..9) {
        let out = sma(&xs, window);
        prop_assert_eq!(out.len(), xs.len());
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(out.iter().all(|&y| y >= lo - 1e-12 && y <= hi + 1e-12));
    }

    /// The clip-bound recommendation is always a valid range, for any
    /// plausible per-slot budget.
    #[test]
    fn clip_bounds_always_valid(slot_eps in 0.001..10.0f64) {
        let b = ClipBounds::recommended(slot_eps).unwrap();
        prop_assert!(b.l() < b.u());
        prop_assert!(b.margin() > -0.5);
    }

    /// The n_s optimizer returns a segment count in [1, q].
    #[test]
    fn sample_count_in_range(eps in 0.1..5.0f64, w in 1usize..50, q in 0usize..200) {
        let ns = optimal_sample_count(eps, w, q);
        prop_assert!(ns >= 1);
        prop_assert!(ns <= q.max(1));
    }

    /// The accountant accepts a uniform ε/w schedule and flags anything
    /// denser.
    #[test]
    fn accountant_uniform_schedule(eps in 0.1..4.0f64, w in 1usize..30, n in 1usize..100) {
        let mut ok = WEventAccountant::new(w, eps);
        let mut over = WEventAccountant::new(w, eps);
        for _ in 0..n {
            ok.record(eps / w as f64);
            over.record(eps / w as f64 * 1.5);
        }
        prop_assert!(ok.satisfies_w_event());
        if n >= w && w > 1 {
            prop_assert!(!over.satisfies_w_event());
        }
    }

    /// w-neighboring is symmetric and monotone in w.
    #[test]
    fn w_neighboring_symmetric_and_monotone(
        a in stream_strategy(),
        flips in proptest::collection::vec(any::<bool>(), 1..120),
        w in 1usize..20,
    ) {
        let b: Vec<f64> = a
            .iter()
            .zip(flips.iter().chain(std::iter::repeat(&false)))
            .map(|(&x, &f)| if f { 1.0 - x } else { x })
            .collect();
        let fwd = are_w_neighboring(&a, &b, w);
        let bwd = are_w_neighboring(&b, &a, w);
        prop_assert_eq!(fwd, bwd);
        if fwd {
            prop_assert!(are_w_neighboring(&a, &b, w + 1));
        }
    }

    /// Accumulated deviation telescopes: for APP the publication drift
    /// |Σx − Σy| is bounded by the worst single-step deviation magnitude
    /// times a small constant, never O(n).
    #[test]
    fn app_drift_stays_bounded(xs in proptest::collection::vec(0.2..=0.8f64, 30..200), seed in 0u64..200) {
        let app = App::new(4.0, 10).unwrap().with_smoothing(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = app.publish(&xs, &mut rng);
        let drift = (xs.iter().sum::<f64>() - out.iter().sum::<f64>()).abs();
        // One SW draw at ε = 0.4 deviates by < 2; clipping can stack a few.
        prop_assert!(drift < 20.0, "drift {} on n={}", drift, xs.len());
    }
}
