//! Multi-process federation: an in-process [`Router`] (and the
//! `ldp-router` binary) over **real `ldp-server` child processes** must
//! agree with one big single-process collector on every query verb —
//! counts exactly, means within 1e-9 (float summation order is the only
//! permitted difference) — and must degrade loudly, not wrongly, when a
//! downstream dies.
//!
//! The child binaries are built once per test process with the ambient
//! `cargo` (offline, path-only deps) and supervised over pipes: each
//! child prints `LISTENING <addr>` and exits when its stdin closes.

use ldp_collector::ReportBatch;
use ldp_router::{downstream_of, Router, RouterConfig};
use ldp_server::wire::code;
use ldp_server::RemoteCollector;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const TOL: f64 = 1e-9;

/// |a - b| within 1e-9, relative for large magnitudes.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1.0)
}

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(close(a, b), "{what}: {a} vs {b} (diff {})", (a - b).abs());
}

fn assert_opt_close(a: Option<f64>, b: Option<f64>, what: &str) {
    match (a, b) {
        (Some(a), Some(b)) => assert_close(a, b, what),
        (None, None) => {}
        _ => panic!("{what}: {a:?} vs {b:?}"),
    }
}

/// Builds the `ldp-server` / `ldp-router` binaries once per test process
/// and returns the directory they land in.
fn bin_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = manifest.parent().expect("workspace root");
        let status = Command::new(env!("CARGO"))
            .args([
                "build",
                "-q",
                "-p",
                "ldp-server",
                "-p",
                "ldp-router",
                "--bins",
            ])
            .current_dir(root)
            .status()
            .expect("spawn cargo build for federation binaries");
        assert!(status.success(), "building federation binaries failed");
        let target = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| root.join("target"));
        target.join("debug")
    })
}

/// A supervised child process speaking the LISTENING/stdin-EOF contract.
struct ChildProc {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: SocketAddr,
}

impl ChildProc {
    fn spawn(binary: &str, args: &[String]) -> Self {
        let mut child = Command::new(bin_dir().join(binary))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {binary}: {e}"));
        let stdout = child.stdout.take().expect("child stdout piped");
        let line = BufReader::new(stdout)
            .lines()
            .next()
            .expect("child prints LISTENING")
            .expect("read child stdout");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected child banner: {line}"))
            .parse()
            .expect("child address parses");
        let stdin = child.stdin.take();
        Self { child, stdin, addr }
    }

    /// Hard-kills the process (the degraded-mode fixture).
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        drop(self.stdin.take()); // EOF = graceful shutdown request
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return;
                }
            }
        }
    }
}

fn spawn_servers(n: usize, extra: &[&str]) -> Vec<ChildProc> {
    let args: Vec<String> = extra.iter().map(|s| (*s).to_string()).collect();
    (0..n)
        .map(|_| ChildProc::spawn("ldp-server", &args))
        .collect()
}

/// Deterministic synthetic workload: `batches` columnar batches, values
/// in [0, 1), users and slots spread by an LCG.
fn synthetic_batches(
    batches: usize,
    batch_size: usize,
    users: u64,
    slots: u64,
) -> Vec<ReportBatch> {
    let mut state = 0xD00D_F00Du64;
    (0..batches)
        .map(|_| {
            let mut batch = ReportBatch::with_capacity(batch_size);
            for _ in 0..batch_size {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let user = (state >> 33) % users;
                let slot = (state >> 17) % slots;
                let value = ((state >> 5) % 4096) as f64 / 4096.0;
                batch.push(user, slot, value);
            }
            batch
        })
        .collect()
}

/// Uploads every batch through `client` and returns the sync ledger.
fn upload(client: &mut RemoteCollector, batches: &[ReportBatch]) -> ldp_collector::IngestOutcome {
    for batch in batches {
        client.ingest(batch).expect("ingest");
    }
    client.sync().expect("sync")
}

/// Every query verb, router vs one big collector, within 1e-9.
fn assert_all_verbs_agree(
    fed: &mut RemoteCollector,
    single: &mut RemoteCollector,
    slots: u64,
    what: &str,
) {
    // population mean
    assert_opt_close(
        fed.population_mean().expect("fed population"),
        single.population_mean().expect("single population"),
        &format!("{what}: population mean"),
    );
    // summary
    let (fs, ss) = (
        fed.summary().expect("fed"),
        single.summary().expect("single"),
    );
    assert_eq!(fs.total_reports, ss.total_reports, "{what}: total_reports");
    assert_eq!(fs.user_count, ss.user_count, "{what}: user_count");
    assert_eq!(fs.retained_base, ss.retained_base, "{what}: retained_base");
    assert_eq!(fs.slot_end, ss.slot_end, "{what}: slot_end");
    assert_eq!(fs.frozen_count, ss.frozen_count, "{what}: frozen_count");
    assert_opt_close(
        fs.population_mean,
        ss.population_mean,
        &format!("{what}: summary population mean"),
    );
    // windowed mean: a retained window, a partially-expired window, and
    // the full stream
    let base = ss.retained_base;
    let end = ss.slot_end;
    let ranges = [
        (base, end),
        (base + (end - base) / 2, end),
        (0, end),
        (base, base + 1),
    ];
    for (lo, hi) in ranges {
        if lo >= hi {
            continue;
        }
        assert_opt_close(
            fed.windowed_mean(lo..hi).expect("fed windowed"),
            single.windowed_mean(lo..hi).expect("single windowed"),
            &format!("{what}: windowed mean {lo}..{hi}"),
        );
    }
    // slot means over everything ever (expired slots must be None on
    // both sides)
    let fed_means = fed.slot_means(0..slots).expect("fed slot means");
    let single_means = single.slot_means(0..slots).expect("single slot means");
    assert_eq!(fed_means.len(), single_means.len());
    for (slot, (f, s)) in fed_means.iter().zip(&single_means).enumerate() {
        assert_opt_close(*f, *s, &format!("{what}: slot {slot} mean"));
    }
    // parts: the raw mergeable contribution
    let fp = fed.query_parts(0..u64::MAX).expect("fed parts");
    let sp = single.query_parts(0..u64::MAX).expect("single parts");
    assert_eq!(fp.retained_base, sp.retained_base, "{what}: parts base");
    assert_eq!(fp.slot_end, sp.slot_end, "{what}: parts end");
    assert_eq!(fp.total_reports, sp.total_reports, "{what}: parts totals");
    assert_eq!(fp.user_count, sp.user_count, "{what}: parts users");
    assert_close(
        fp.user_mean_sum,
        sp.user_mean_sum,
        &format!("{what}: parts mean sum"),
    );
    assert_eq!(
        fp.frozen.count, sp.frozen.count,
        "{what}: parts frozen count"
    );
    assert_close(
        fp.frozen.sum,
        sp.frozen.sum,
        &format!("{what}: parts frozen sum"),
    );
    for (slot, (f, s)) in fp.slots.iter().zip(&sp.slots).enumerate() {
        assert_eq!(f.count, s.count, "{what}: part slot {slot} count");
        assert_close(f.sum, s.sum, &format!("{what}: part slot {slot} sum"));
        assert_close(
            f.sum_sq,
            s.sum_sq,
            &format!("{what}: part slot {slot} sum_sq"),
        );
    }
    // stats: the merged report ledger
    let (fst, sst) = (
        fed.server_stats().expect("fed stats"),
        single.server_stats().expect("single stats"),
    );
    assert_eq!(
        fst.accepted_reports, sst.accepted_reports,
        "{what}: accepted"
    );
    assert_eq!(
        fst.rejected_reports, sst.rejected_reports,
        "{what}: rejected"
    );
    assert_eq!(
        fst.frames_failed, 0,
        "{what}: no failed frames at the router"
    );
    // ping end-to-end through the front
    fed.ping().expect("fed ping");
    single.ping().expect("single ping");
}

/// The tentpole pin: a router over three real `ldp-server` processes is
/// indistinguishable (≤ 1e-9) from one big collector, on every verb.
#[test]
fn federated_queries_agree_with_single_collector() {
    const SLOTS: u64 = 24;
    let downstreams = spawn_servers(3, &[]);
    let single = spawn_servers(1, &[]);
    let router = Router::bind(
        downstreams.iter().map(|c| c.addr).collect(),
        RouterConfig::default(),
    )
    .expect("bind router");

    let batches = synthetic_batches(12, 1024, 500, SLOTS);
    let total: usize = batches.iter().map(ReportBatch::len).sum();

    let mut fed = RemoteCollector::connect(router.local_addr()).expect("connect router");
    let mut one = RemoteCollector::connect(single[0].addr).expect("connect single");
    let fed_ack = upload(&mut fed, &batches);
    let one_ack = upload(&mut one, &batches);
    assert_eq!(fed_ack, one_ack, "sync ledgers agree");
    assert_eq!(fed_ack.accepted, total as u64, "every report durable");

    assert_all_verbs_agree(&mut fed, &mut one, SLOTS, "unbounded retention");

    // The router's own books: every row went to exactly one downstream,
    // spread per the routing hash.
    let metrics = router.metrics();
    let routed: u64 = (0..3)
        .map(|i| {
            metrics
                .counter(&format!("router.downstream.{i:02}.rows"))
                .expect("per-downstream row counter")
        })
        .sum();
    assert_eq!(routed, total as u64, "partition is a partition");
    for i in 0..3 {
        let rows = metrics
            .counter(&format!("router.downstream.{i:02}.rows"))
            .unwrap();
        assert!(rows > 0, "downstream {i} got no rows");
        assert_eq!(
            metrics
                .counter(&format!("router.downstream.{i:02}.lost_frames"))
                .unwrap(),
            0
        );
    }
}

/// Same agreement with bounded retention: every downstream expires
/// independently, and the merged answers still anchor exactly where the
/// single collector's do.
#[test]
fn federated_queries_agree_under_bounded_retention() {
    const SLOTS: u64 = 40;
    const RETAIN: &str = "12";
    let downstreams = spawn_servers(2, &["--retention", RETAIN]);
    let single = spawn_servers(1, &["--retention", RETAIN]);
    let router = Router::bind(
        downstreams.iter().map(|c| c.addr).collect(),
        RouterConfig::default(),
    )
    .expect("bind router");

    let batches = synthetic_batches(10, 1024, 300, SLOTS);
    let mut fed = RemoteCollector::connect(router.local_addr()).expect("connect router");
    let mut one = RemoteCollector::connect(single[0].addr).expect("connect single");
    let fed_ack = upload(&mut fed, &batches);
    let one_ack = upload(&mut one, &batches);
    assert_eq!(fed_ack, one_ack, "sync ledgers agree under retention");

    assert_all_verbs_agree(&mut fed, &mut one, SLOTS, "bounded retention");
}

/// The `ldp-router` binary speaks the same supervisor contract as
/// `ldp-server`, so a whole federation can be run from a shell.
#[test]
fn router_binary_routes_end_to_end() {
    let downstreams = spawn_servers(2, &[]);
    let mut args = Vec::new();
    for child in &downstreams {
        args.push("--downstream".to_string());
        args.push(child.addr.to_string());
    }
    let router = ChildProc::spawn("ldp-router", &args);

    let mut client = RemoteCollector::connect(router.addr).expect("connect router binary");
    let mut batch = ReportBatch::new();
    for user in 0..200u64 {
        batch.push(user, user % 6, (user % 10) as f64 / 10.0);
    }
    client.ingest(&batch).expect("ingest");
    assert_eq!(client.sync().expect("sync").accepted, 200);
    let summary = client.summary().expect("summary");
    assert_eq!(summary.total_reports, 200);
    assert_eq!(summary.user_count, 200);
    client.ping().expect("ping through router binary");
}

/// Degraded mode: kill one downstream and the router refuses exact
/// answers with a typed DEGRADED error, keeps transport verbs alive,
/// flips the health gauge, and counts what it had to drop.
#[test]
fn dead_downstream_degrades_loudly_not_wrongly() {
    const SLOTS: u64 = 8;
    let mut downstreams = spawn_servers(2, &[]);
    let router = Router::bind(
        downstreams.iter().map(|c| c.addr).collect(),
        RouterConfig {
            // Fast, bounded retries so the test is snappy.
            reconnect: ldp_server::ReconnectPolicy {
                max_retries: 1,
                initial_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(10),
            },
            health_interval: Duration::from_millis(30),
            poll_interval: Duration::from_millis(5),
            ..RouterConfig::default()
        },
    )
    .expect("bind router");

    let batches = synthetic_batches(2, 512, 100, SLOTS);
    let mut client = RemoteCollector::connect(router.local_addr()).expect("connect");
    let ack = upload(&mut client, &batches);
    assert_eq!(ack.accepted, 1024, "healthy federation acks everything");

    // Wait for the probe to see both downstreams healthy, then kill one.
    wait_for(|| router.downstream_health() == vec![1, 1], "both healthy");
    downstreams[1].kill();
    wait_for(
        || router.downstream_health() == vec![1, 0],
        "death observed",
    );

    // Exact-answer verbs refuse with the typed DEGRADED code (mapped to
    // ErrorKind::Other by the client).
    let err = client
        .population_mean()
        .expect_err("population must degrade");
    assert_eq!(err.kind(), std::io::ErrorKind::Other, "{err}");
    assert!(err.to_string().contains("downstreams unavailable"), "{err}");
    let err = client.summary().expect_err("summary must degrade");
    assert_eq!(err.kind(), std::io::ErrorKind::Other, "{err}");

    // Ingest keeps flowing to the healthy set; the barrier reports the
    // gap instead of a short ledger.
    for batch in &batches {
        client.ingest(batch).expect("ingest to healthy set");
    }
    let err = client.sync().expect_err("sync must degrade");
    assert_eq!(err.kind(), std::io::ErrorKind::Other, "{err}");

    // Transport verbs still work: the router itself is healthy.
    client.ping().expect("front ping while degraded");
    let metrics = client.metrics().expect("metrics while degraded");
    assert_eq!(
        metrics.gauge("router.downstream.01.healthy"),
        Some(0),
        "health gauge exported"
    );
    assert!(
        metrics
            .counter("router.downstream.01.lost_rows")
            .unwrap_or(0)
            > 0,
        "dropped rows are counted"
    );
    assert!(
        metrics
            .counter("router.downstream.01.degraded_acks")
            .unwrap_or(0)
            > 0,
        "degraded barriers are counted"
    );
}

/// Routing is deterministic and user-granular: every row of a user goes
/// to the same downstream the hash names.
#[test]
fn routing_respects_the_published_hash() {
    let downstreams = spawn_servers(2, &[]);
    let router = Router::bind(
        downstreams.iter().map(|c| c.addr).collect(),
        RouterConfig::default(),
    )
    .expect("bind router");

    // Users that all route to downstream 0 under the published hash.
    let picked: Vec<u64> = (0..5_000u64)
        .filter(|&u| downstream_of(u, 2) == 0)
        .take(50)
        .collect();
    let mut batch = ReportBatch::new();
    for &user in &picked {
        batch.push(user, 0, 0.25);
    }
    let mut client = RemoteCollector::connect(router.local_addr()).expect("connect");
    client.ingest(&batch).expect("ingest");
    assert_eq!(client.sync().expect("sync").accepted, picked.len() as u64);

    let metrics = router.metrics();
    assert_eq!(
        metrics.counter("router.downstream.00.rows"),
        Some(picked.len() as u64)
    );
    assert_eq!(metrics.counter("router.downstream.01.rows"), Some(0));

    // And the one downstream that got them agrees it owns those users.
    let mut direct = RemoteCollector::connect(downstreams[0].addr).expect("connect downstream");
    assert_eq!(
        direct.summary().expect("summary").user_count,
        picked.len() as u64
    );
}

/// A garbage front frame is refused with a MALFORMED error, exactly like
/// the server's edge.
#[test]
fn router_front_rejects_garbage() {
    let downstreams = spawn_servers(1, &[]);
    let router =
        Router::bind(vec![downstreams[0].addr], RouterConfig::default()).expect("bind router");

    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(router.local_addr()).expect("connect raw");
    // Exactly one header's worth: leftover unread bytes at the router
    // would turn its close into a TCP reset that discards the reply.
    raw.write_all(b"not an LDPW head").expect("write");
    raw.shutdown(std::net::Shutdown::Write)
        .expect("shutdown write half");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply)
        .expect("router answers then closes");
    let (frame, _) = ldp_server::Frame::decode(&reply, 1 << 20).expect("error frame decodes");
    match frame {
        ldp_server::Frame::Error { code: c, .. } => assert_eq!(c, code::MALFORMED),
        other => panic!("expected error frame, got {other:?}"),
    }
}

/// Polls `cond` for a few seconds; panics with `what` on timeout.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}
