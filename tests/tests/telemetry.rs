//! Telemetry subsystem integration: lock-free registry exactness under
//! concurrent recording, `MetricsSnapshot` wire-frame round-trips
//! (including truncated and corrupted payloads), and the end-to-end
//! acceptance pin — the server's wire-served metric counters must agree
//! **exactly** with the sums of the client-side ingest ledgers. Not
//! approximately: the telemetry counters ARE the collector's books, so
//! any daylight between the two is a bug, not sampling noise.

use ldp_collector::{Collector, CollectorConfig, ReportBatch};
use ldp_server::wire::{Frame, HEADER_LEN};
use ldp_server::{RemoteCollector, Server, ServerConfig};
use ldp_telemetry::{
    HistogramSnapshot, MetricEntry, MetricValue, Registry, TelemetrySnapshot, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Concurrent registry exactness
// ---------------------------------------------------------------------------

#[test]
fn concurrent_recording_is_exact_and_snapshots_never_tear() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 50_000;
    let registry = Arc::new(Registry::new());
    let events = registry.counter("test.events");
    let level = registry.gauge("test.level");
    let latency = registry.histogram("test.latency");
    // Every writer records the same value stream, so the quiescent sum is
    // exactly `WRITERS` times this.
    let per_writer_sum: u64 = (0..PER_WRITER).map(|i| (i % 1024) + 1).sum();

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let events = Arc::clone(&events);
            let level = Arc::clone(&level);
            let latency = Arc::clone(&latency);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    events.inc();
                    if i % 2 == 0 {
                        level.inc();
                    } else {
                        level.dec();
                    }
                    latency.record((i % 1024) + 1);
                }
            });
        }
        // Concurrent reader: every snapshot taken mid-flight must be
        // internally coherent — monotone counts, bucket totals that are
        // never torn, and values bounded by what the writers could have
        // recorded so far.
        let registry = Arc::clone(&registry);
        scope.spawn(move || {
            let (mut last_events, mut last_count) = (0u64, 0u64);
            for _ in 0..500 {
                let snap = registry.snapshot();
                let events = snap.counter("test.events").expect("registered");
                let hist = snap.histogram("test.latency").expect("registered");
                let count = hist.count();
                assert!(events >= last_events, "counter went backwards");
                assert!(count >= last_count, "histogram count went backwards");
                assert!(events <= WRITERS * PER_WRITER);
                assert!(count <= WRITERS * PER_WRITER);
                assert_eq!(
                    count,
                    hist.buckets().iter().sum::<u64>(),
                    "count is derived from the snapshot's own buckets"
                );
                assert!(hist.max() <= 1024, "no sample larger than any recorded");
                assert!(hist.sum() <= WRITERS * per_writer_sum);
                (last_events, last_count) = (events, count);
            }
        });
    });

    // Quiescent: every one of the 400k increments landed exactly once.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("test.events"), Some(WRITERS * PER_WRITER));
    assert_eq!(snap.gauge("test.level"), Some(0), "inc/dec pairs cancel");
    let hist = snap.histogram("test.latency").expect("registered");
    assert_eq!(hist.count(), WRITERS * PER_WRITER);
    assert_eq!(hist.sum(), WRITERS * per_writer_sum);
    assert_eq!(hist.max(), 1024);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot wire round-trip (property)
// ---------------------------------------------------------------------------

/// How many distinct metric names the generator can draw from.
const NAME_TABLE: usize = 24;

/// Splitmix-style value stream so each case derives its whole snapshot
/// from one generated seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A snapshot over the (sorted, deduplicated) `indices` of the name
/// table, with kinds and values drawn from `seed`.
fn random_snapshot(indices: &[usize], seed: u64) -> TelemetrySnapshot {
    let mut rng = Mix(seed);
    let mut sorted: Vec<usize> = indices.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let entries = sorted
        .into_iter()
        .map(|i| {
            let value = match rng.next() % 3 {
                0 => MetricValue::Counter(rng.next()),
                1 => MetricValue::Gauge(rng.next() as i64),
                _ => {
                    let n = (rng.next() as usize) % (HISTOGRAM_BUCKETS + 1);
                    // Bounded bucket counts so derived sums can't overflow.
                    let buckets = (0..n).map(|_| rng.next() & 0xFFFF_FFFF).collect();
                    MetricValue::Histogram(HistogramSnapshot::from_parts(
                        rng.next(),
                        rng.next(),
                        buckets,
                    ))
                }
            };
            MetricEntry {
                name: format!("prop.metric.{i:02}"),
                value,
            }
        })
        .collect();
    TelemetrySnapshot { entries }
}

proptest! {
    #[test]
    fn metrics_snapshots_round_trip_and_resist_mangling(
        indices in proptest::collection::vec(0usize..NAME_TABLE, 1..16),
        seed in any::<u64>(),
        cut in 0usize..1 << 20,
        flip in 0usize..1 << 20,
    ) {
        let snap = random_snapshot(&indices, seed);
        let bytes = Frame::Metrics(snap.clone()).encode();
        let (decoded, consumed) = Frame::decode(&bytes, u32::MAX).expect("round trip");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, Frame::Metrics(snap));

        // Every truncation is refused — there is no shorter prefix that
        // quietly parses as a smaller snapshot.
        prop_assert!(Frame::decode(&bytes[..cut % bytes.len()], u32::MAX).is_err());

        // Any single corrupted payload byte is caught (checksum, or the
        // payload validator for the rare colliding flip).
        let flip = HEADER_LEN + flip % (bytes.len() - HEADER_LEN);
        let mut mangled = bytes;
        mangled[flip] ^= 0x01;
        prop_assert!(Frame::decode(&mangled, u32::MAX).is_err());
    }
}

// ---------------------------------------------------------------------------
// Loopback: wire-served metrics vs. client ledgers, exactly
// ---------------------------------------------------------------------------

/// A push-built batch: 50 finite reports over slots `0..80` (everything
/// at or above the collector's `max_slots = 64` will be dropped) plus two
/// non-finite values that `push` screens client-side — those ride the
/// ingest frame as upstream rejections.
fn pushed_batch(conn: u64, round: u64) -> ReportBatch {
    let mut batch = ReportBatch::with_capacity(52);
    for i in 0..50 {
        batch.push(conn * 1_000 + i, (i * 3 + round) % 80, (i as f64) / 64.0);
    }
    assert!(!batch.push(conn * 1_000 + 999, 1, f64::NAN));
    assert!(!batch.push(conn * 1_000 + 998, 2, f64::INFINITY));
    batch
}

/// A column-built batch: `from_columns` performs no screening, so the
/// three non-finite values reach the server and are rejected *at ingest*
/// (the other screening path), alongside a few out-of-bounds slots.
fn column_batch(conn: u64, round: u64) -> ReportBatch {
    let mut users = Vec::new();
    let mut slots = Vec::new();
    let mut values = Vec::new();
    for i in 0..48u64 {
        users.push(conn * 1_000 + 500 + i);
        slots.push((i * 5 + round) % 72);
        values.push(match i {
            7 => f64::NAN,
            19 => f64::INFINITY,
            31 => f64::NEG_INFINITY,
            _ => (i as f64) / 48.0,
        });
    }
    ReportBatch::from_columns(users, slots, values)
}

#[test]
fn loopback_metrics_agree_exactly_with_client_ledgers() {
    const CONNECTIONS: u64 = 3;
    const ROUNDS: u64 = 2;
    let collector = Arc::new(Collector::new(CollectorConfig {
        shards: 4,
        max_slots: 64,
        ..CollectorConfig::default()
    }));
    let server = Server::bind(Arc::clone(&collector), ServerConfig::default()).expect("bind");

    // Drive ingest over real connections, summing each connection's
    // sync-acknowledged ledger. `sync` is a barrier, so by the time the
    // last one returns every frame below is folded and tallied.
    let (mut accepted, mut dropped, mut rejected) = (0u64, 0u64, 0u64);
    let (mut ingest_frames, mut ingest_bytes) = (0u64, 0u64);
    let mut scratch = Vec::new();
    for conn in 0..CONNECTIONS {
        let mut client = RemoteCollector::connect(server.local_addr()).expect("connect");
        for round in 0..ROUNDS {
            for batch in [pushed_batch(conn, round), column_batch(conn, round)] {
                // Re-encode locally to know exactly how many wire bytes
                // this frame put on the socket.
                scratch.clear();
                Frame::encode_ingest_into(&batch, &mut scratch);
                ingest_bytes += scratch.len() as u64;
                client.ingest(&batch).expect("ingest");
                ingest_frames += 1;
            }
        }
        let outcome = client.sync().expect("sync barrier");
        accepted += outcome.accepted;
        dropped += outcome.dropped;
        rejected += outcome.rejected;
    }
    assert!(
        accepted > 0 && dropped > 0 && rejected > 0,
        "every disposition exercised"
    );
    // 2 NaN/inf screened client-side per pushed batch.
    let upstream = CONNECTIONS * ROUNDS * 2;

    // The in-process books match the ledger sums…
    assert_eq!(collector.total_reports(), accepted);
    assert_eq!(collector.dropped_reports(), dropped);
    assert_eq!(collector.rejected_reports(), rejected);
    assert_eq!(collector.upstream_rejected_reports(), upstream);
    assert_eq!(collector.ingested_batches(), ingest_frames);

    // …and so does the Stats frame served over the wire…
    let mut dash = RemoteCollector::connect(server.local_addr()).expect("connect");
    let stats = dash.server_stats().expect("stats");
    assert_eq!(stats.accepted_reports, accepted);
    assert_eq!(stats.dropped_reports, dropped);
    assert_eq!(stats.rejected_reports, rejected);
    assert_eq!(stats.upstream_rejected_reports, upstream);
    assert_eq!(stats.ingest_frames, ingest_frames);
    assert!(
        stats.bytes_in >= ingest_bytes,
        "transport counted at least the ingest traffic ({} < {ingest_bytes})",
        stats.bytes_in
    );
    assert!(stats.bytes_out > 0, "replies were counted");

    // …and so does the full MetricsSnapshot frame: the same atomics the
    // Stats frame reads, serialized through the registry.
    let metrics = dash.metrics().expect("metrics");
    assert_eq!(
        metrics.counter("collector.reports.accepted"),
        Some(accepted)
    );
    assert_eq!(metrics.counter("collector.reports.dropped"), Some(dropped));
    assert_eq!(
        metrics.counter("collector.reports.rejected"),
        Some(rejected)
    );
    assert_eq!(
        metrics.counter("collector.reports.rejected_upstream"),
        Some(upstream)
    );
    assert_eq!(
        metrics.counter("collector.ingest.batches"),
        Some(ingest_frames)
    );
    assert_eq!(metrics.counter("server.ingest.frames"), Some(ingest_frames));
    assert_eq!(
        metrics.counter("server.frames.by_type.ingest"),
        Some(ingest_frames)
    );
    assert_eq!(
        metrics
            .histogram("collector.ingest.fold_nanos")
            .expect("registered")
            .count(),
        ingest_frames,
        "one fold-latency sample per non-empty ingest frame"
    );

    // Per-shard batch counters exist for every shard and account for at
    // least one shard fold per frame (a frame spanning shards counts once
    // per shard it touched).
    let shard_counters: Vec<u64> = metrics
        .entries
        .iter()
        .filter(|e| e.name.starts_with("collector.shard.") && e.name.ends_with(".batches"))
        .filter_map(|e| match e.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .collect();
    assert_eq!(shard_counters.len(), 4, "one batch counter per shard");
    assert!(shard_counters.iter().sum::<u64>() >= ingest_frames);

    // The decoded snapshot preserves the registry's sorted-unique order —
    // the invariant its binary-search lookups rely on survived the wire.
    assert!(metrics
        .entries
        .windows(2)
        .all(|pair| pair[0].name < pair[1].name));
}
