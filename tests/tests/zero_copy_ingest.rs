//! Equivalence guarantees of the zero-copy ingest fast path:
//!
//! 1. `Collector::ingest(ReportColumns)` ≡ `Collector::ingest(ReportBatch)`
//!    outcome-for-outcome and state-for-state (bit-identical snapshots —
//!    both paths fold the same reports in the same order), including on
//!    hostile columns carrying NaN/∞ values and out-of-bound slots.
//! 2. The wire path — encode → borrowed `IngestView` decode into scratch
//!    → ingest — lands the collector in exactly the state a direct owned
//!    ingest produces.
//! 3. The borrowed `IngestView` scratch columns agree field-for-field
//!    with the owned `Frame` decode on well-formed ingest frames of
//!    every size. (The owned decoder delegates to `FrameView`, but the
//!    *column materialization* paths are genuinely distinct — scratch
//!    bulk-widen vs owned `Vec` collect — so this comparison is not
//!    tautological; hostile/truncated payload agreement is fuzzed in
//!    `ldp-server`'s own proptests, next to the codec.)

use ldp_collector::{Collector, CollectorConfig, ReportBatch, ReportColumns};
use ldp_server::wire::{Frame, FrameView, Header, IngestScratch, HEADER_LEN};
use proptest::prelude::*;

/// Deterministic hostile columns: ~1/7 non-finite values, ~1/5 slots at
/// or beyond the collector bound, user ids spread across shards.
fn hostile_columns(n: usize, seed: u64, max_slots: u64) -> (Vec<u64>, Vec<u64>, Vec<f64>) {
    let mut users = Vec::with_capacity(n);
    let mut slots = Vec::with_capacity(n);
    let mut values = Vec::with_capacity(n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF;
    for _ in 0..n {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        users.push(state >> 48);
        slots.push(match state % 5 {
            0 => max_slots + (state >> 20) % 1000, // dropped
            _ => (state >> 8) % max_slots,
        });
        values.push(match state % 7 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => ((state >> 13) % 4096) as f64 / 4096.0 - 0.5,
        });
    }
    (users, slots, values)
}

fn collector(shards: usize, max_slots: u64) -> Collector {
    Collector::new(CollectorConfig {
        shards,
        max_slots,
        ..CollectorConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn borrowed_columns_and_owned_batch_ingest_identically(
        n in 0usize..400,
        seed in 0u64..10_000,
        shards in 1usize..6,
    ) {
        let max_slots = 64;
        let (users, slots, values) = hostile_columns(n, seed, max_slots);

        let owned = collector(shards, max_slots);
        let batch = ReportBatch::from_columns(users.clone(), slots.clone(), values.clone());
        let outcome_owned = owned.ingest_outcome(&batch);

        let borrowed = collector(shards, max_slots);
        let columns = ReportColumns::new(&users, &slots, &values);
        let outcome_borrowed = borrowed.ingest_outcome(&columns);

        prop_assert_eq!(outcome_owned, outcome_borrowed);
        prop_assert_eq!(
            outcome_owned.accepted + outcome_owned.dropped + outcome_owned.rejected,
            n as u64,
            "every report accounted for"
        );
        prop_assert_eq!(owned.total_reports(), borrowed.total_reports());
        prop_assert_eq!(owned.dropped_reports(), borrowed.dropped_reports());
        prop_assert_eq!(owned.rejected_reports(), borrowed.rejected_reports());

        // Same reports, same order, same shards: the resulting state is
        // bit-identical, not merely close.
        let (snap_owned, snap_borrowed) = (owned.snapshot(), borrowed.snapshot());
        prop_assert_eq!(snap_owned.user_ids(), snap_borrowed.user_ids());
        prop_assert_eq!(snap_owned.per_user_means(), snap_borrowed.per_user_means());
        prop_assert_eq!(snap_owned.slot_count(), snap_borrowed.slot_count());
        for (a, b) in snap_owned.slots().iter().zip(snap_borrowed.slots()) {
            prop_assert_eq!(a.count, b.count);
            prop_assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            prop_assert_eq!(a.sum_sq.to_bits(), b.sum_sq.to_bits());
        }
        prop_assert_eq!(owned.per_user_rows(), borrowed.per_user_rows());
    }

    #[test]
    fn wire_decoded_scratch_columns_ingest_like_the_owned_batch(
        n in 0usize..300,
        seed in 0u64..10_000,
    ) {
        let max_slots = 64;
        let (users, slots, values) = hostile_columns(n, seed, max_slots);

        // Reference: direct owned ingest, no wire round trip.
        let reference = collector(4, max_slots);
        let batch = ReportBatch::from_columns(users.clone(), slots.clone(), values.clone());
        let reference_outcome = reference.ingest_outcome(&batch);

        // Wire path: encode the batch, decode borrowed, fold the scratch
        // columns — what a server connection thread does per frame.
        let via_wire = collector(4, max_slots);
        let mut bytes = Vec::new();
        Frame::encode_ingest_into(&batch, &mut bytes);
        let header = Header::parse(bytes[..HEADER_LEN].try_into().expect("header"))
            .expect("well-formed header");
        let payload = &bytes[HEADER_LEN..];
        header.verify(payload).expect("checksum survives the trip");
        let view = match FrameView::decode_body(header.frame_type, payload).expect("decode") {
            FrameView::Ingest(view) => view,
            other => panic!("expected ingest view, got {other:?}"),
        };
        let mut scratch = IngestScratch::default();
        let wire_outcome = via_wire.ingest_outcome(&view.columns(&mut scratch));

        prop_assert_eq!(reference_outcome, wire_outcome);
        prop_assert_eq!(
            reference.snapshot().per_user_means(),
            via_wire.snapshot().per_user_means()
        );

        // And the borrowed view agrees field-for-field with the owned
        // decoder on the same payload.
        match Frame::decode_body(header.frame_type, payload).expect("owned decode") {
            Frame::Ingest { users: u, slots: s, values: v, rejected_upstream } => {
                prop_assert_eq!(rejected_upstream, view.rejected_upstream());
                let columns = view.columns(&mut scratch);
                prop_assert_eq!(columns.users(), &u[..]);
                prop_assert_eq!(columns.slots(), &s[..]);
                let bits: Vec<u64> = columns.values().iter().map(|x| x.to_bits()).collect();
                let owned_bits: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(bits, owned_bits, "NaN payloads survive bit-exactly");
            }
            other => panic!("expected ingest frame, got {other:?}"),
        }
    }
}

#[test]
fn empty_columns_are_a_no_op_on_both_paths() {
    let c = collector(3, 64);
    assert_eq!(c.ingest(&ReportColumns::new(&[], &[], &[])), 0);
    assert_eq!(c.ingest(&ReportBatch::new()), 0);
    assert_eq!(c.total_reports(), 0);
    assert!((0..3).all(|s| c.shard_epoch(s) == 0), "no epoch advanced");
}
