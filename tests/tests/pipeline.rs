//! End-to-end pipeline tests: dataset → algorithm → collector estimate,
//! determinism, and the EM distribution estimator in the loop.

use integration_tests::test_rng;
use ldp_core::crowd;
use ldp_core::{App, Capp, Ipp, StreamMechanism};
use ldp_experiments::{AlgorithmSpec, Dataset};
use ldp_mechanisms::sw_estimate::{estimate_mean, EmConfig};
use ldp_mechanisms::{Mechanism, SquareWave};
use ldp_metrics::{mse, wasserstein_sorted};
use ldp_streams::synthetic::{power_population, taxi_population, volume};

/// The whole pipeline is deterministic given (dataset seed, RNG seed).
#[test]
fn pipeline_is_reproducible() {
    let data = volume(500, 21);
    for alg in [
        AlgorithmSpec::SwDirect,
        AlgorithmSpec::BaSw,
        AlgorithmSpec::Ipp,
        AlgorithmSpec::App,
        AlgorithmSpec::Capp { margin: None },
        AlgorithmSpec::ToPL,
        AlgorithmSpec::AppSampling,
    ] {
        let a = alg.build(1.0, 10).publish(data.values(), &mut test_rng(77));
        let b = alg.build(1.0, 10).publish(data.values(), &mut test_rng(77));
        assert_eq!(a, b, "{} is not reproducible", alg.label());
    }
}

/// Publishing a long stream and estimating its mean stays close to truth
/// for APP (the running-sum telescoping property, end to end).
///
/// Note the budget: the telescoping correction can only flow while the
/// deviation-adjusted input stays inside `[0, 1]`. At very small per-slot
/// budgets SW's output expectation is pinned near 0.5 regardless of input,
/// so on skewed data the accumulated deviation saturates against the clip
/// bound and the published mean drifts toward SW's fixed point — the
/// bias-dominated regime both the paper's and our Figure 4 numbers live
/// in. With ε/w = 2 SW is expectation-faithful and telescoping holds.
#[test]
fn app_long_stream_mean_converges() {
    let data = volume(5_000, 22);
    let truth = data.mean();
    let app = App::new(20.0, 10).unwrap();
    let mut rng = test_rng(5);
    let est = app.estimate_mean(data.values(), &mut rng);
    assert!(
        (est - truth).abs() < 0.02,
        "APP long-run mean {est} vs truth {truth}"
    );
}

/// The clipping-saturation regime itself: at a tiny per-slot budget on
/// skewed data, the published mean sits near SW's fixed point rather than
/// the true mean — and CAPP's widened clip range moves it closer to truth
/// than plain APP manages.
#[test]
fn tiny_budget_mean_saturates_at_sw_fixed_point() {
    let data = volume(3_000, 27);
    let truth = data.mean(); // ≈ 0.29, far from SW's ≈ 0.5 fixed point
    let app = App::new(1.0, 20).unwrap(); // ε/w = 0.05
    let mut rng = test_rng(28);
    let est = app.estimate_mean(data.values(), &mut rng);
    assert!(
        (est - 0.5).abs() < 0.1,
        "expected saturation near 0.5, got {est} (truth {truth})"
    );
}

/// The EM distribution estimator integrates with direct SW collection:
/// collector-side mean from raw reports via EM tracks the population mean.
#[test]
fn em_estimator_recovers_population_mean_from_sw_reports() {
    let population = taxi_population(200, 50, 23);
    let sw = SquareWave::new(1.0).unwrap();
    let mut rng = test_rng(6);
    // Each user reports slot 0 once with the full budget.
    let reports: Vec<f64> = population
        .iter()
        .map(|u| sw.perturb(u.values()[0], &mut rng))
        .collect();
    let est = estimate_mean(&sw, &reports, &EmConfig::default());
    let truth: f64 =
        population.iter().map(|u| u.values()[0]).sum::<f64>() / population.len() as f64;
    assert!((est - truth).abs() < 0.1, "EM mean {est} vs truth {truth}");
}

/// Crowd-level pipeline: estimated mean distribution converges to the true
/// one as the budget grows (Theorem 5's premise, end to end).
#[test]
fn crowd_distribution_tightens_with_budget() {
    let population = power_population(300, 96, 24);
    let range = 10..40;
    let truth = crowd::true_population_means(&population, range.clone());
    let mut rng = test_rng(7);
    let distances: Vec<f64> = [0.5, 4.0, 32.0]
        .iter()
        .map(|&eps| {
            let algo = App::new(eps, 30).unwrap();
            let est =
                crowd::estimated_population_means(&population, range.clone(), &algo, &mut rng);
            wasserstein_sorted(&est, &truth)
        })
        .collect();
    assert!(
        distances[2] < distances[0],
        "distance should fall with budget: {distances:?}"
    );
}

/// Smoothing improves pointwise stream quality end to end (Lemma IV.1).
#[test]
fn smoothing_reduces_stream_mse() {
    let data = volume(2_000, 25);
    let app_raw = App::new(2.0, 10).unwrap().with_smoothing(0);
    let app_smooth = App::new(2.0, 10).unwrap();
    let mut rng = test_rng(8);
    let trials = 10;
    let (mut err_raw, mut err_smooth) = (0.0, 0.0);
    for _ in 0..trials {
        err_raw += mse(&app_raw.publish(data.values(), &mut rng), data.values());
        err_smooth += mse(&app_smooth.publish(data.values(), &mut rng), data.values());
    }
    assert!(
        err_smooth < err_raw,
        "smoothed MSE {err_smooth} should be below raw {err_raw}"
    );
}

/// All three PP algorithms preserve the stream length on every dataset.
#[test]
fn pp_algorithms_preserve_length_on_all_datasets() {
    let mut rng = test_rng(9);
    for ds in [
        Dataset::C6h6,
        Dataset::Volume,
        Dataset::Taxi,
        Dataset::Power,
    ] {
        let data = ds.materialize(10, 26);
        let sub = data.random_subsequence(40, &mut rng).to_vec();
        for publisher in [
            Box::new(Ipp::new(1.0, 10).unwrap()) as Box<dyn StreamMechanism>,
            Box::new(App::new(1.0, 10).unwrap()),
            Box::new(Capp::new(1.0, 10).unwrap()),
        ] {
            assert_eq!(publisher.publish(&sub, &mut rng).len(), 40);
        }
    }
}
