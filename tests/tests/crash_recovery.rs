//! Crash recovery across a **real process boundary**: an `ldp-server`
//! child running with `--data-dir` is SIGKILLed mid-life — no Drop, no
//! seal, no flush beyond what the ack protocol already forced — and a
//! fresh process pointed at the same directory must recover every acked
//! report exactly (counts exact, means within 1e-9 of the pre-kill
//! answers) and keep serving. A subsequent clean shutdown (stdin EOF)
//! must seal the log so the next boot replays zero records.
//!
//! Same child-supervision contract as `federation.rs`, except durable
//! children print `RECOVERED records=<n> rows=<n> clean=<bool>` before
//! `LISTENING <addr>` — the spawn here reads lines until the banner and
//! keeps the recovery report for the assertions.

use ldp_collector::ReportBatch;
use ldp_server::RemoteCollector;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const TOL: f64 = 1e-9;

fn assert_close(a: f64, b: f64, what: &str) {
    let ok = (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1.0);
    assert!(ok, "{what}: {a} vs {b} (diff {})", (a - b).abs());
}

/// Builds the `ldp-server` binary once per test process.
fn bin_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = manifest.parent().expect("workspace root");
        let status = Command::new(env!("CARGO"))
            .args(["build", "-q", "-p", "ldp-server", "--bins"])
            .current_dir(root)
            .status()
            .expect("spawn cargo build for ldp-server");
        assert!(status.success(), "building ldp-server failed");
        let target = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| root.join("target"));
        target.join("debug")
    })
}

/// The `RECOVERED records=<n> rows=<n> clean=<bool>` boot banner.
#[derive(Debug)]
struct RecoveredBanner {
    records: u64,
    rows: u64,
    clean: bool,
}

/// A durable `ldp-server` child: `RECOVERED …` then `LISTENING <addr>`
/// on stdout; stdin EOF requests graceful shutdown (seal); kill() is the
/// crash fixture.
struct DurableChild {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: SocketAddr,
    recovered: RecoveredBanner,
}

impl DurableChild {
    fn spawn(data_dir: &Path) -> Self {
        let mut child = Command::new(bin_dir().join("ldp-server"))
            .args(["--data-dir", data_dir.to_str().expect("utf-8 temp dir")])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn durable ldp-server");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut recovered = None;
        let addr = loop {
            let line = lines
                .next()
                .expect("child prints LISTENING before stdout closes")
                .expect("read child stdout");
            if let Some(rest) = line.strip_prefix("RECOVERED ") {
                recovered = Some(parse_recovered(rest));
            } else if let Some(rest) = line.strip_prefix("LISTENING ") {
                break rest.parse().expect("child address parses");
            } else {
                panic!("unexpected child banner: {line}");
            }
        };
        let recovered = recovered.expect("durable child prints RECOVERED before LISTENING");
        let stdin = child.stdin.take();
        Self {
            child,
            stdin,
            addr,
            recovered,
        }
    }

    /// SIGKILL: the crash. Nothing in the process gets to run — only
    /// what the WAL already fsynced survives.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for DurableChild {
    fn drop(&mut self) {
        drop(self.stdin.take()); // EOF = graceful shutdown (checkpoint + seal)
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return;
                }
            }
        }
    }
}

fn parse_recovered(rest: &str) -> RecoveredBanner {
    let mut records = None;
    let mut rows = None;
    let mut clean = None;
    for field in rest.split_whitespace() {
        let (key, value) = field.split_once('=').expect("key=value banner field");
        match key {
            "records" => records = Some(value.parse().expect("records count")),
            "rows" => rows = Some(value.parse().expect("rows count")),
            "clean" => clean = Some(value.parse().expect("clean flag")),
            other => panic!("unexpected RECOVERED field: {other}"),
        }
    }
    RecoveredBanner {
        records: records.expect("records field"),
        rows: rows.expect("rows field"),
        clean: clean.expect("clean field"),
    }
}

/// Deterministic batches (same LCG family as `federation.rs`).
fn synthetic_batches(batches: usize, batch_size: usize, salt: u64) -> Vec<ReportBatch> {
    let mut state = 0xC4A5_11FEu64.wrapping_add(salt);
    (0..batches)
        .map(|_| {
            let mut batch = ReportBatch::with_capacity(batch_size);
            for _ in 0..batch_size {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                batch.push(
                    (state >> 33) % 128,
                    (state >> 17) % 8,
                    ((state >> 5) % 4096) as f64 / 4096.0,
                );
            }
            batch
        })
        .collect()
}

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The whole lifecycle in one test (the boots are sequential by nature):
/// fresh boot → acked ingest → SIGKILL → recovery boot (exact state,
/// still serving) → more acked ingest → clean shutdown → sealed boot
/// (zero replay, combined state).
#[test]
fn sigkill_then_restart_recovers_every_acked_report() {
    let dir = temp_data_dir("lifecycle");
    const BATCH: usize = 256;
    let first_wave = synthetic_batches(3, BATCH, 1);
    let second_wave = synthetic_batches(2, BATCH, 2);

    // Boot 1: fresh directory.
    let mut child = DurableChild::spawn(&dir);
    assert_eq!(
        child.recovered.records, 0,
        "fresh dir has nothing to replay"
    );
    let (pre_total, pre_users, pre_mean) = {
        let mut client = RemoteCollector::connect(child.addr).expect("connect");
        for batch in &first_wave {
            client.ingest(batch).expect("ingest");
        }
        let ack = client.sync().expect("sync");
        assert_eq!(ack.accepted, (3 * BATCH) as u64, "every report acked");
        let summary = client.summary().expect("summary");
        let mean = client.population_mean().expect("population mean");
        (summary.total_reports, summary.user_count, mean)
    };

    // The crash: SIGKILL, nothing flushes, nothing seals.
    child.kill();

    // Boot 2: recovery replays exactly the acked frames.
    let child = DurableChild::spawn(&dir);
    assert!(!child.recovered.clean, "a SIGKILLed log is not sealed");
    assert_eq!(child.recovered.records, 3, "one WAL record per acked frame");
    assert_eq!(child.recovered.rows, (3 * BATCH) as u64);
    {
        let mut client = RemoteCollector::connect(child.addr).expect("reconnect");
        let summary = client.summary().expect("summary");
        assert_eq!(summary.total_reports, pre_total, "ledger exact after crash");
        assert_eq!(summary.user_count, pre_users, "user census exact");
        match (client.population_mean().expect("population mean"), pre_mean) {
            (Some(a), Some(b)) => assert_close(a, b, "population mean across the crash"),
            (a, b) => panic!("population mean availability changed: {a:?} vs {b:?}"),
        }
        let stats = client.server_stats().expect("stats");
        assert_eq!(
            stats.wal_recovered_records, 3,
            "wire stats carry the replay"
        );

        // The recovered server keeps serving: second wave, acked.
        for batch in &second_wave {
            client.ingest(batch).expect("ingest after recovery");
        }
        let ack = client.sync().expect("sync after recovery");
        assert_eq!(
            ack.accepted,
            (2 * BATCH) as u64,
            "second wave acked in full"
        );
    }
    drop(child); // stdin EOF → graceful shutdown → checkpoint + seal

    // Boot 3: a sealed log replays nothing and remembers everything.
    let child = DurableChild::spawn(&dir);
    assert!(child.recovered.clean, "graceful shutdown must seal");
    assert_eq!(
        child.recovered.records, 0,
        "clean shutdown leaves zero records to replay"
    );
    {
        let mut client = RemoteCollector::connect(child.addr).expect("connect 3");
        let summary = client.summary().expect("summary 3");
        assert_eq!(
            summary.total_reports,
            (5 * BATCH) as u64,
            "both waves survive the crash + the clean restart"
        );
    }
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}
