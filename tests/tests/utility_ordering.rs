//! End-to-end shape assertions: the qualitative orderings the paper's
//! evaluation reports must hold on the synthetic substrate.

use ldp_experiments::runner::{subsequence_metric, Metric};
use ldp_experiments::{AlgorithmSpec, Dataset, TrialSpec};

fn trial(epsilon: f64, w: usize, q: usize, trials: usize, seed: u64) -> TrialSpec {
    TrialSpec {
        epsilon,
        w,
        q,
        trials,
        seed,
    }
}

/// Table I shape: ToPL's mean-estimation MSE dwarfs every SW-based method.
#[test]
fn topl_is_orders_of_magnitude_worse() {
    let data = Dataset::C6h6.materialize(1, 11);
    let spec = trial(1.0, 20, 20, 30, 101);
    let topl = subsequence_metric(&data, AlgorithmSpec::ToPL, &spec, Metric::MeanSquaredError);
    let sw = subsequence_metric(
        &data,
        AlgorithmSpec::SwDirect,
        &spec,
        Metric::MeanSquaredError,
    );
    assert!(
        topl > 10.0 * sw,
        "ToPL {topl} should be ≫ SW-direct {sw} (paper: >100×)"
    );
}

/// Figure 4 shape: the perturbation-parameterization family does not lose
/// to SW-direct for mean estimation on temporally correlated data.
#[test]
fn pp_family_beats_sw_direct_for_mean_estimation() {
    let data = Dataset::Taxi.materialize(100, 12);
    let spec = trial(1.0, 30, 30, 120, 102);
    let sw = subsequence_metric(
        &data,
        AlgorithmSpec::SwDirect,
        &spec,
        Metric::MeanSquaredError,
    );
    for alg in [AlgorithmSpec::App, AlgorithmSpec::Capp { margin: None }] {
        let v = subsequence_metric(&data, alg, &spec, Metric::MeanSquaredError);
        assert!(
            v < sw * 1.1,
            "{} MSE {v} should not lose to SW-direct {sw}",
            alg.label()
        );
    }
}

/// Figure 5 shape: CAPP achieves the lowest cosine distance of the
/// non-sampling arms; SW-direct the highest.
#[test]
fn capp_wins_stream_publication() {
    let data = Dataset::Volume.materialize(1, 13);
    let spec = trial(1.0, 30, 30, 60, 103);
    let sw = subsequence_metric(
        &data,
        AlgorithmSpec::SwDirect,
        &spec,
        Metric::CosineDistance,
    );
    let capp = subsequence_metric(
        &data,
        AlgorithmSpec::Capp { margin: None },
        &spec,
        Metric::CosineDistance,
    );
    assert!(capp < sw, "CAPP cosine {capp} should beat SW-direct {sw}");
}

/// Figure 6 shape: sampling-based APP-S/CAPP-S beat non-sampling SW-direct
/// for subsequence mean estimation once ε is large enough for the
/// per-upload budget to reduce SW's input-pinning bias (at ε ≤ 1 every
/// algorithm sits on the same bias floor; see EXPERIMENTS.md).
#[test]
fn sampling_improves_mean_estimation() {
    let data = Dataset::Volume.materialize(1, 14);
    let spec = trial(3.0, 20, 30, 200, 104);
    let sw = subsequence_metric(
        &data,
        AlgorithmSpec::SwDirect,
        &spec,
        Metric::MeanSquaredError,
    );
    for alg in [AlgorithmSpec::AppSampling, AlgorithmSpec::CappSampling] {
        let v = subsequence_metric(&data, alg, &spec, Metric::MeanSquaredError);
        assert!(
            v < sw,
            "{} MSE {v} should beat SW-direct {sw} for means at ε = 3",
            alg.label()
        );
    }
}

/// Figure 9 shape: SW beats the alternative mechanisms for stream
/// publication at equal budget, and APP helps each mechanism.
#[test]
fn sw_dominates_alternative_mechanisms() {
    use ldp_experiments::algorithms::AltMechanism;
    let data = Dataset::C6h6.materialize(1, 15);
    let spec = trial(1.0, 10, 10, 40, 105);
    let sw_app = subsequence_metric(&data, AlgorithmSpec::App, &spec, Metric::MeanSquaredError);
    for m in [AltMechanism::Laplace, AltMechanism::Pm] {
        let alt = subsequence_metric(
            &data,
            AlgorithmSpec::MechApp(m),
            &spec,
            Metric::MeanSquaredError,
        );
        assert!(
            sw_app < alt,
            "SW-APP {sw_app} should beat {}-APP {alt}",
            m.label()
        );
    }
}

/// APP feedback helps the Laplace mechanism too (Fig 9's per-mechanism
/// improvement).
#[test]
fn app_feedback_improves_laplace() {
    use ldp_experiments::algorithms::AltMechanism;
    let data = Dataset::Volume.materialize(1, 16);
    let spec = trial(1.0, 10, 20, 150, 106);
    let direct = subsequence_metric(
        &data,
        AlgorithmSpec::MechDirect(AltMechanism::Laplace),
        &spec,
        Metric::MeanSquaredError,
    );
    let app = subsequence_metric(
        &data,
        AlgorithmSpec::MechApp(AltMechanism::Laplace),
        &spec,
        Metric::MeanSquaredError,
    );
    assert!(
        app < direct,
        "Laplace-APP {app} should beat Laplace-direct {direct}"
    );
}

/// More budget never hurts: MSE at ε = 3 is below MSE at ε = 0.5 for every
/// principal algorithm.
#[test]
fn mse_monotone_in_budget() {
    let data = Dataset::C6h6.materialize(1, 17);
    for alg in [
        AlgorithmSpec::SwDirect,
        AlgorithmSpec::App,
        AlgorithmSpec::Capp { margin: None },
        AlgorithmSpec::AppSampling,
    ] {
        let lo = subsequence_metric(
            &data,
            alg,
            &trial(0.25, 20, 20, 80, 107),
            Metric::MeanSquaredError,
        );
        let hi = subsequence_metric(
            &data,
            alg,
            &trial(6.0, 20, 20, 80, 107),
            Metric::MeanSquaredError,
        );
        assert!(
            hi < lo,
            "{}: ε=6 MSE {hi} should be below ε=0.25 MSE {lo}",
            alg.label()
        );
    }
}
