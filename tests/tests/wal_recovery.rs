//! Write-ahead log durability: the recovery contract end to end.
//!
//! Four tiers:
//!
//! * **Record codec (proptest)** — encode → decode round-trips exactly;
//!   every torn-tail cut and every single-bit flip is refused at or
//!   before the damaged record, never decoded as garbage.
//! * **Replay idempotence** — recovering the same directory any number of
//!   times yields bit-identical collectors: no record is ever
//!   double-counted, with or without an interleaved checkpoint.
//! * **Server round trip** — a durable loopback [`Server`] driven over
//!   real TCP, shut down cleanly, recovers to the exact pre-shutdown
//!   state: ledger tallies exact, per-user means bit-identical,
//!   wire-served stats carrying the WAL books.
//! * **Power loss** — `simulate_power_loss` (buffered bytes vanish, the
//!   active segment truncates to the fsync high-water mark) loses only
//!   what no ack ever covered: every synced batch survives exactly.

use ldp_collector::{Collector, CollectorConfig, ReportBatch};
use ldp_server::durable::{self, Durability, FlushPolicy, WalConfig};
use ldp_server::wire::{Frame, IngestScratch, HEADER_LEN};
use ldp_server::{RemoteCollector, Server, ServerConfig};
use ldp_wal::record::{decode_record, encode_record, encoded_len, RecordKind};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Fresh per-test WAL directory (pid + counter: parallel test threads and
/// leftover dirs from a killed run cannot collide).
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ldp-wal-it-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_config(dir: &PathBuf) -> WalConfig {
    WalConfig::new(dir).flush(FlushPolicy::Barrier)
}

/// Serial collector config: deterministic fold order so recovered state
/// can be compared bit-for-bit against a reference fold.
fn collector_config() -> CollectorConfig {
    CollectorConfig {
        shards: 3,
        ingest_workers: 0,
        ..CollectorConfig::default()
    }
}

/// A deterministic batch; `salt` varies users/values so batches are
/// distinguishable in the recovered state.
fn batch(salt: u64) -> ReportBatch {
    let mut b = ReportBatch::new();
    for row in 0..16u64 {
        let user = salt * 100 + row % 8;
        let slot = row % 4;
        let value = ((salt * 31 + row * 7) % 64) as f64 / 64.0;
        assert!(b.push(user, slot, value));
    }
    b
}

/// The raw ingest frame *payload* for a batch — what the server appends
/// to the WAL and what recovery replays.
fn ingest_payload(b: &ReportBatch) -> Vec<u8> {
    let mut framed = Vec::new();
    Frame::encode_ingest_into(b, &mut framed);
    framed[HEADER_LEN..].to_vec()
}

/// Drives `n` batches through the durability layer the way a server
/// connection thread does (append → fold), with a barrier at the end.
fn ingest_batches(d: &Durability, collector: &Collector, salts: std::ops::Range<u64>) {
    let mut scratch = IngestScratch::default();
    for salt in salts {
        let payload = ingest_payload(&batch(salt));
        d.ingest_frame(collector, &payload, &mut scratch)
            .expect("durable ingest");
    }
    d.barrier().expect("barrier");
}

fn user_mean_bits(c: &Collector) -> Vec<u64> {
    c.snapshot()
        .per_user_means()
        .iter()
        .map(|m| m.to_bits())
        .collect()
}

fn assert_same_state(a: &Collector, b: &Collector, what: &str) {
    assert_eq!(a.total_reports(), b.total_reports(), "{what}: accepted");
    assert_eq!(a.dropped_reports(), b.dropped_reports(), "{what}: dropped");
    assert_eq!(
        a.rejected_reports(),
        b.rejected_reports(),
        "{what}: rejected"
    );
    assert_eq!(
        a.upstream_rejected_reports(),
        b.upstream_rejected_reports(),
        "{what}: upstream-rejected"
    );
    assert_eq!(
        user_mean_bits(a),
        user_mean_bits(b),
        "{what}: per-user means must be bit-identical"
    );
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(
        sa.windowed_mean(0..4).map(f64::to_bits),
        sb.windowed_mean(0..4).map(f64::to_bits),
        "{what}: windowed mean must be bit-identical"
    );
}

// ====================================================================
// Replay idempotence
// ====================================================================

/// Recovering the same log twice — and a third time after the second
/// recovery — yields bit-identical collectors, and both match a reference
/// collector that folded the same batches directly: nothing lost, nothing
/// double-counted.
#[test]
fn repeated_recovery_is_idempotent_and_matches_direct_fold() {
    let dir = temp_dir("idem");
    const BATCHES: u64 = 8;
    {
        let (collector, d, report) =
            durable::recover(collector_config(), wal_config(&dir)).expect("fresh recover");
        assert_eq!(report.replayed_records, 0);
        ingest_batches(&d, &collector, 0..BATCHES);
        // No seal: models a crash after the barrier.
    }
    let reference = Collector::new(collector_config());
    for salt in 0..BATCHES {
        reference.ingest_outcome(&batch(salt));
    }

    let (first, _, r1) = durable::recover(collector_config(), wal_config(&dir)).expect("recover 1");
    assert_eq!(r1.replayed_records, BATCHES);
    assert_eq!(r1.replayed_rows, BATCHES * 16);
    assert!(!r1.clean);
    let (second, _, r2) =
        durable::recover(collector_config(), wal_config(&dir)).expect("recover 2");
    assert_eq!(
        r2.replayed_records, BATCHES,
        "replay must not consume the log"
    );
    assert_same_state(&first, &second, "recover twice");
    assert_same_state(&first, &reference, "recovery vs direct fold");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A checkpoint mid-stream splits recovery into restore + replay; records
/// at or below the covered sequence are filtered, so the checkpointed
/// prefix is never folded twice.
#[test]
fn checkpoint_plus_replay_never_double_counts() {
    let dir = temp_dir("ckpt");
    {
        let (collector, d, _) =
            durable::recover(collector_config(), wal_config(&dir)).expect("fresh recover");
        ingest_batches(&d, &collector, 0..5);
        d.checkpoint_now(&collector).expect("checkpoint");
        ingest_batches(&d, &collector, 5..8);
    }
    let reference = Collector::new(collector_config());
    for salt in 0..8 {
        reference.ingest_outcome(&batch(salt));
    }
    let (recovered, _, report) =
        durable::recover(collector_config(), wal_config(&dir)).expect("recover");
    assert_eq!(
        report.replayed_records, 3,
        "only the post-checkpoint tail replays"
    );
    assert_eq!(recovered.total_reports(), 8 * 16);
    assert_same_state(&recovered, &reference, "checkpoint + replay");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A recovered collector keeps ingesting correctly: recovery leaves the
/// log appendable and the state continuable, and a second recovery sees
/// the combined history.
#[test]
fn recovery_then_more_ingest_then_recovery_again() {
    let dir = temp_dir("cont");
    {
        let (collector, d, _) = durable::recover(collector_config(), wal_config(&dir)).unwrap();
        ingest_batches(&d, &collector, 0..3);
    }
    {
        let (collector, d, report) =
            durable::recover(collector_config(), wal_config(&dir)).unwrap();
        assert_eq!(report.replayed_records, 3);
        ingest_batches(&d, &collector, 3..6);
    }
    let reference = Collector::new(collector_config());
    for salt in 0..6 {
        reference.ingest_outcome(&batch(salt));
    }
    let (recovered, _, report) = durable::recover(collector_config(), wal_config(&dir)).unwrap();
    assert_eq!(report.replayed_records, 6);
    assert_same_state(&recovered, &reference, "recover, continue, recover");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ====================================================================
// Server round trip over real TCP
// ====================================================================

/// The headline guarantee: a durable server driven over loopback TCP,
/// shut down cleanly, recovers to the exact pre-shutdown state — and the
/// recovered server's wire stats carry the WAL books.
#[test]
fn durable_server_clean_shutdown_recovers_exact_state() {
    let dir = temp_dir("srv");
    const BATCHES: u64 = 6;
    let (pre_totals, pre_means) = {
        let (collector, d, _) =
            durable::recover(collector_config(), wal_config(&dir)).expect("fresh recover");
        let server = Server::bind_durable(Arc::clone(&collector), d, ServerConfig::default())
            .expect("bind durable server");
        let mut client = RemoteCollector::connect(server.local_addr()).expect("connect");
        for salt in 0..BATCHES {
            client.ingest(&batch(salt)).expect("ingest");
        }
        let ack = client.sync().expect("sync");
        assert_eq!(ack.accepted, BATCHES * 16);
        let stats = client.server_stats().expect("stats");
        assert_eq!(stats.wal_appended_records, BATCHES);
        assert!(stats.wal_appended_bytes > 0);
        drop(client);
        let totals = collector.total_reports();
        let means = user_mean_bits(&collector);
        drop(server); // graceful: joins threads, checkpoints, seals
        (totals, means)
    };

    let (recovered, d2, report) =
        durable::recover(collector_config(), wal_config(&dir)).expect("recover");
    assert!(report.clean, "sealed shutdown must recover clean");
    assert_eq!(report.replayed_records, 0, "seal means zero replay");
    assert_eq!(recovered.total_reports(), pre_totals);
    assert_eq!(user_mean_bits(&recovered), pre_means);

    // The recovered server serves — and a fresh client sees the restored
    // ledger through the wire.
    let server = Server::bind_durable(Arc::clone(&recovered), d2, ServerConfig::default())
        .expect("rebind recovered server");
    let mut client = RemoteCollector::connect(server.local_addr()).expect("reconnect");
    assert_eq!(client.summary().expect("summary").total_reports, pre_totals);
    drop(client);
    drop(server);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Power loss mid-stream: unsynced pipelined frames vanish, but **every
/// batch covered by an ack survives exactly** — the recovered state is
/// bit-identical to a direct fold of the acked prefix.
#[test]
fn power_loss_preserves_every_acked_batch_exactly() {
    let dir = temp_dir("ploss");
    const ACKED: u64 = 3;
    {
        let (collector, d, _) =
            durable::recover(collector_config(), wal_config(&dir)).expect("fresh recover");
        let server = Server::bind_durable(
            Arc::clone(&collector),
            Arc::clone(&d),
            ServerConfig::default(),
        )
        .expect("bind durable server");
        let mut client = RemoteCollector::connect(server.local_addr()).expect("connect");
        for salt in 0..ACKED {
            client.ingest(&batch(salt)).expect("ingest");
        }
        let ack = client.sync().expect("sync");
        assert_eq!(ack.accepted, ACKED * 16);
        // Two more pipelined frames, never synced. The stats query (FIFO
        // behind them on the connection) proves the server folded and
        // appended them before the power cut — they are lost from the
        // *log tail*, not unsent.
        client.ingest(&batch(ACKED)).expect("ingest");
        client.ingest(&batch(ACKED + 1)).expect("ingest");
        let stats = client.server_stats().expect("stats");
        assert_eq!(stats.wal_appended_records, ACKED + 2);
        d.simulate_power_loss().expect("power loss");
        drop(client);
        drop(server); // shutdown's seal fails on the dead log (counted), harmless
    }
    let reference = Collector::new(collector_config());
    for salt in 0..ACKED {
        reference.ingest_outcome(&batch(salt));
    }
    let (recovered, _, report) =
        durable::recover(collector_config(), wal_config(&dir)).expect("recover");
    assert_eq!(
        report.replayed_records, ACKED,
        "exactly the fsynced (acked) prefix survives"
    );
    assert!(!report.clean);
    assert_same_state(&recovered, &reference, "post-power-loss state");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An ingest frame that the WAL refuses is answered with UNAVAILABLE and
/// never folded — the fail-closed side of "ack implies durable".
#[test]
fn dead_log_fails_closed_over_the_wire() {
    let dir = temp_dir("dead");
    let (collector, d, _) =
        durable::recover(collector_config(), wal_config(&dir)).expect("fresh recover");
    let server = Server::bind_durable(
        Arc::clone(&collector),
        Arc::clone(&d),
        ServerConfig::default(),
    )
    .expect("bind durable server");
    d.simulate_power_loss().expect("kill the log");
    let mut client = RemoteCollector::connect(server.local_addr()).expect("connect");
    // The frame reaches a server whose log is dead: it must refuse (the
    // error surfaces on the sync read; the connection is closed), and the
    // collector must not have folded the frame.
    let _ = client.ingest(&batch(0));
    assert!(client.sync().is_err(), "no ack may cover an unlogged frame");
    assert_eq!(collector.total_reports(), 0, "refused frame must not fold");
    drop(client);
    drop(server);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ====================================================================
// Record codec properties
// ====================================================================

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode → decode is the identity, and the encoded length matches
    /// the accounting helper.
    #[test]
    fn record_codec_round_trips(
        seq in 1u64..u64::MAX,
        is_seal in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let kind = if is_seal { RecordKind::Seal } else { RecordKind::Ingest };
        let mut buf = Vec::new();
        encode_record(seq, kind, &payload, &mut buf);
        prop_assert_eq!(buf.len(), encoded_len(payload.len()));
        let (rec, used) = decode_record(&buf)
            .expect("fresh record must decode")
            .expect("non-empty buffer");
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(rec.seq, seq);
        prop_assert_eq!(rec.kind, kind);
        prop_assert_eq!(rec.payload, &payload[..]);
    }

    /// Torn tail: cut a multi-record buffer anywhere strictly inside it —
    /// the scan yields exactly the records that fit before the cut and
    /// refuses the rest. Never a phantom record, never a reordering.
    #[test]
    fn torn_tail_yields_only_the_intact_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, p) in payloads.iter().enumerate() {
            encode_record(i as u64 + 1, RecordKind::Ingest, p, &mut buf);
            boundaries.push(buf.len());
        }
        // Cut strictly inside the buffer (cut == len is the clean case).
        let cut = ((buf.len() as f64 - 1.0) * cut_frac) as usize;
        let torn = &buf[..cut];
        let intact = boundaries.iter().filter(|b| **b <= cut).count() - 1;

        let mut off = 0;
        let mut seen = 0usize;
        loop {
            match decode_record(&torn[off..]) {
                Ok(None) => break,
                Ok(Some((rec, used))) => {
                    prop_assert_eq!(rec.seq, seen as u64 + 1, "order preserved");
                    prop_assert_eq!(rec.payload, &payloads[seen][..]);
                    seen += 1;
                    off += used;
                }
                Err(_) => break,
            }
        }
        prop_assert_eq!(seen, intact, "exactly the records before the cut");
    }

    /// Any single bit flip is detected: the scan stops at (or before) the
    /// damaged record, and every record it does yield is an exact
    /// original. Garbage never decodes.
    #[test]
    fn single_bit_flip_never_decodes_as_garbage(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48), 1..5),
        flip_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, p) in payloads.iter().enumerate() {
            encode_record(i as u64 + 1, RecordKind::Ingest, p, &mut buf);
            boundaries.push(buf.len());
        }
        let flip_at = ((buf.len() - 1) as f64 * flip_frac) as usize;
        buf[flip_at] ^= 1 << bit;
        let damaged_record = boundaries.iter().filter(|b| **b <= flip_at).count() - 1;

        let mut off = 0;
        let mut seen = 0usize;
        loop {
            match decode_record(&buf[off..]) {
                Ok(None) => break,
                Ok(Some((rec, used))) => {
                    prop_assert_eq!(rec.seq, seen as u64 + 1);
                    prop_assert_eq!(rec.payload, &payloads[seen][..]);
                    seen += 1;
                    off += used;
                }
                Err(_) => break,
            }
        }
        prop_assert!(
            seen <= damaged_record,
            "scan must stop at or before the flipped record ({seen} > {damaged_record})"
        );
    }
}
