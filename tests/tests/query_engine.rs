//! Integration guarantees of the live windowed query engine:
//!
//! 1. **Liveness under contention** — query threads never corrupt or stall
//!    ingest: `total_reports` is monotone while both run, and the final
//!    drained view agrees with a full locking snapshot.
//! 2. **Retention boundary** — a collector with bounded [`SlotRetention`]
//!    answers every query over its retained range identically (≤ 1e-9) to
//!    an unbounded collector fed the same reports, while holding per-slot
//!    memory at O(R) on streams far longer than the window.

use ldp_collector::{
    ClientFleet, Collector, CollectorConfig, FleetConfig, QueryEngine, ReportBatch, SlotRetention,
};
use ldp_core::online::{OnlineSession, PipelineSpec, SessionKind};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// N ingest threads race a query thread. The query thread checks that the
/// accepted counter is monotone (the old implementation summed per-shard
/// counters under successive locks and could tear), that view versions
/// are monotone, and that every view it sees is internally sane.
#[test]
fn concurrent_ingest_while_query_stress() {
    let (threads, batches, per_batch) = (4u64, 200u64, 50u64);
    let collector = Collector::new(CollectorConfig {
        shards: 4,
        retention: SlotRetention::Last(32),
        ..CollectorConfig::default()
    });
    let engine = QueryEngine::new(&collector);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let checker = {
            let (collector, engine, done) = (&collector, &engine, &done);
            scope.spawn(move || {
                let mut last_total = 0u64;
                let mut last_version = 0u64;
                let mut last_view_total = 0u64;
                while !done.load(Ordering::Acquire) {
                    let total = collector.total_reports();
                    assert!(total >= last_total, "total_reports went backwards");
                    last_total = total;
                    engine.refresh();
                    let view = engine.view();
                    assert!(view.version() >= last_version, "view version regressed");
                    last_version = view.version();
                    assert!(
                        view.total_reports() >= last_view_total,
                        "published view lost reports"
                    );
                    last_view_total = view.total_reports();
                    if let Some(m) = view.population_mean() {
                        assert!(m.is_finite());
                    }
                    let retained = view.slot_count();
                    assert!(retained <= 32, "retention bound violated: {retained}");
                }
            })
        };
        let ingest: Vec<_> = (0..threads)
            .map(|t| {
                let collector = &collector;
                scope.spawn(move || {
                    let mut batch = ReportBatch::new();
                    for b in 0..batches {
                        batch.clear();
                        for i in 0..per_batch {
                            let user = t * batches * per_batch + b * per_batch + i;
                            batch.push(user, b, (i % 10) as f64 / 10.0);
                        }
                        assert_eq!(collector.ingest(&batch) as u64, per_batch);
                    }
                })
            })
            .collect();
        for h in ingest {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        checker.join().unwrap();
    });
    let expected = threads * batches * per_batch;
    assert_eq!(collector.total_reports(), expected);
    engine.refresh();
    let view = engine.view();
    let snapshot = collector.snapshot();
    assert_eq!(view.total_reports(), expected);
    assert_eq!(snapshot.total_reports(), expected);
    assert_eq!(view.user_count(), snapshot.user_count());
    assert_eq!(engine.per_user_means(), snapshot.per_user_means());
}

/// A long stream (≥ 100× the retention window) holds collector memory at
/// O(R) and session ledger memory at O(w), with lifetime totals exact.
#[test]
fn long_stream_memory_stays_flat() {
    let (w, r, slots) = (4usize, 8u64, 800u64);
    let collector = Collector::new(CollectorConfig {
        shards: 2,
        retention: SlotRetention::Last(r),
        ..CollectorConfig::default()
    });
    let mut session = OnlineSession::capp(1.0, w).unwrap();
    let mut rng = integration_tests::test_rng(3);
    let mut batch = ReportBatch::new();
    for slot in 0..slots {
        let y = session.report(0.5, &mut rng);
        batch.clear();
        batch.push(1, slot, y);
        collector.ingest(&batch);
    }
    // Session side: the w-event ledger holds after 200× w slots…
    assert_eq!(session.slots_published(), slots as usize);
    assert!(session.accountant().satisfies_w_event());
    // …and the collector side retains only R slots of a 100× R stream.
    let snap = collector.snapshot();
    assert!(snap.slot_count() as u64 <= r);
    assert_eq!(snap.slot_end(), slots);
    assert_eq!(snap.total_reports(), slots);
    assert_eq!(
        snap.frozen().count + snap.slots().iter().map(|s| s.count).sum::<u64>(),
        slots,
        "every expired report is preserved in the frozen prefix"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Retention boundary: every query over the retained range of a
    /// bounded collector — served through the live query engine — agrees
    /// with an unbounded collector fed the exact same fleet, to ≤ 1e-9.
    #[test]
    fn retained_queries_agree_with_unbounded_collector(
        users in 5usize..20,
        slots in 30usize..80,
        w in 2usize..8,
        r_mult in 1u64..4,
        seed in 0u64..1000,
    ) {
        let r = (w as u64) * r_mult;
        let population = ldp_streams::synthetic::taxi_population(users, slots, seed);
        let fleet = ClientFleet::new(FleetConfig {
            spec: PipelineSpec::sw(SessionKind::Capp),
            epsilon: 2.0,
            w,
            seed,
            threads: 3,
        });
        let unbounded = Collector::new(CollectorConfig {
            shards: 3,
            ..CollectorConfig::default()
        });
        let bounded = Collector::new(CollectorConfig {
            shards: 3,
            retention: SlotRetention::Last(r),
            ..CollectorConfig::default()
        });
        fleet.drive(&population, 0..slots, &unbounded).unwrap();
        fleet.drive(&population, 0..slots, &bounded).unwrap();

        let reference = unbounded.snapshot();
        let engine = bounded.query_engine();
        let view = engine.view();

        prop_assert!(view.slot_count() as u64 <= r, "memory bound violated");
        prop_assert_eq!(view.total_reports(), reference.total_reports());
        prop_assert_eq!(view.slot_end(), reference.slot_end());

        // Per-slot agreement over the retained range.
        for slot in view.retained_base()..view.slot_end() {
            let live = view.slot_mean(slot as usize).unwrap();
            let full = reference.slot_mean(slot as usize).unwrap();
            prop_assert!((live - full).abs() < 1e-9, "slot {}: {} vs {}", slot, live, full);
        }
        // Windowed queries over any retained subrange agree.
        let base = view.retained_base() as usize;
        let end = view.slot_end() as usize;
        let live = view.windowed_mean(base..end).unwrap();
        let full = reference.windowed_mean(base..end).unwrap();
        prop_assert!((live - full).abs() < 1e-9, "window: {} vs {}", live, full);
        // Crowd-level queries are retention-independent (user sums are
        // lifetime state).
        let live_pop = view.population_mean().unwrap();
        let full_pop = reference.population_mean().unwrap();
        prop_assert!((live_pop - full_pop).abs() < 1e-9);
        let (a, b) = (engine.per_user_means(), reference.per_user_means());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        // Queries that reach below the retained range answer `None`, never
        // a silently wrong number.
        if base > 0 {
            prop_assert_eq!(view.slot_mean(base - 1), None);
            prop_assert_eq!(view.windowed_mean(base - 1..end), None);
        }
    }
}
