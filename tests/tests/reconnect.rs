//! [`RemoteCollector`] reconnect-with-backoff: a client whose first
//! connection is killed by the server transparently redials (bounded by
//! [`ReconnectPolicy`]) and completes the operation; with the policy
//! disabled the same drop is fatal. Pinned against a raw in-test
//! listener so the test controls exactly which connections die.

use ldp_collector::ReportBatch;
use ldp_server::wire::HEADER_LEN;
use ldp_server::{Frame, Header, IngestLoss, ReconnectPolicy, RemoteCollector};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A server that drops its first `drop_first` accepted connections on
/// the floor, then answers transport verbs on the survivors.
struct FlakyServer {
    addr: SocketAddr,
    accepted: Arc<AtomicUsize>,
    closed: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl FlakyServer {
    fn start(drop_first: usize) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind flaky server");
        let addr = listener.local_addr().expect("local addr");
        let accepted = Arc::new(AtomicUsize::new(0));
        let closed = Arc::new(AtomicBool::new(false));
        let counter = Arc::clone(&accepted);
        let stop = Arc::clone(&closed);
        let join = std::thread::spawn(move || loop {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            if stop.load(Ordering::SeqCst) {
                return; // the Drop handshake, not a client
            }
            let n = counter.fetch_add(1, Ordering::SeqCst);
            if n < drop_first {
                drop(stream); // the flake: hang up before any frame
                continue;
            }
            serve_one(stream);
        });
        Self {
            addr,
            accepted,
            closed,
            join: Some(join),
        }
    }

    fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }
}

impl Drop for FlakyServer {
    fn drop(&mut self) {
        // Unblock the accept loop so the thread can be joined.
        self.closed.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Minimal frame responder: Ping → Pong, Goodbye/EOF → done.
fn serve_one(mut stream: TcpStream) {
    let mut header = [0u8; HEADER_LEN];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let parsed = match Header::parse(&header) {
            Ok(parsed) => parsed,
            Err(_) => return,
        };
        let mut payload = vec![0u8; parsed.payload_len as usize];
        if stream.read_exact(&mut payload).is_err() || parsed.verify(&payload).is_err() {
            return;
        }
        let reply = match Frame::decode_body(parsed.frame_type, &payload) {
            Ok(Frame::Ping { nonce }) => Frame::Pong { nonce },
            Ok(Frame::Goodbye) | Err(_) => return,
            Ok(_) => Frame::Error {
                code: ldp_server::wire::code::UNSUPPORTED,
                message: "flaky test server only pongs".to_string(),
            },
        };
        if stream.write_all(&reply.encode()).is_err() {
            return;
        }
    }
}

/// The satellite pin: the server kills the client's first connection,
/// and the default policy rides it out — the ping succeeds on a fresh
/// dial the client made by itself.
#[test]
fn client_survives_server_killing_first_connection() {
    let server = FlakyServer::start(1);
    // connect() itself succeeds — the TCP handshake completes before the
    // server hangs up — so the flake surfaces on the first operation.
    let mut client = RemoteCollector::connect_with(
        server.addr,
        ReconnectPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
    )
    .expect("initial connect");
    client.ping().expect("ping survives a killed connection");
    assert!(
        server.accepted() >= 2,
        "client must have redialed (saw {} connections)",
        server.accepted()
    );
}

/// With reconnection disabled the identical flake is fatal — the pre-v3
/// behavior, preserved as an explicit opt-out.
#[test]
fn disabled_policy_makes_first_drop_fatal() {
    let server = FlakyServer::start(1);
    let mut client = RemoteCollector::connect_with(server.addr, ReconnectPolicy::none())
        .expect("initial connect");
    client.ping().expect_err("no-retry client must fail");
    assert_eq!(server.accepted(), 1, "no redial without a policy");
}

/// A flake longer than the retry budget is also fatal: the backoff is
/// bounded, not an infinite loop against a dead host.
#[test]
fn retry_budget_is_bounded() {
    let server = FlakyServer::start(10);
    let mut client = RemoteCollector::connect_with(
        server.addr,
        ReconnectPolicy {
            max_retries: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        },
    )
    .expect("initial connect");
    client.ping().expect_err("budget exhausted must fail");
    assert!(
        server.accepted() <= 4,
        "1 initial + at most 2 retries per op (saw {})",
        server.accepted()
    );
}

/// Frame responder that acknowledges sync barriers: IngestSync →
/// IngestAck{0,0,0}, pipelined ingest frames consumed silently,
/// Goodbye/EOF → done. Models the fresh post-reconnect connection whose
/// ledger never saw the lost frames.
fn serve_empty_acks(mut stream: TcpStream) {
    let mut header = [0u8; HEADER_LEN];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let Ok(parsed) = Header::parse(&header) else {
            return;
        };
        let mut payload = vec![0u8; parsed.payload_len as usize];
        if stream.read_exact(&mut payload).is_err() || parsed.verify(&payload).is_err() {
            return;
        }
        match Frame::decode_body(parsed.frame_type, &payload) {
            Ok(Frame::IngestSync) => {
                let ack = Frame::IngestAck {
                    accepted: 0,
                    dropped: 0,
                    rejected: 0,
                };
                if stream.write_all(&ack.encode()).is_err() {
                    return;
                }
            }
            Ok(Frame::Goodbye) | Err(_) => return,
            Ok(_) => {} // pipelined ingest: no reply expected
        }
    }
}

/// The reconnect satellite's sharp edge, fixed: pipelined ingest frames
/// that died with the old connection are **not** silently re-acked by the
/// replacement connection's fresh ledger — the first sync after the loss
/// surfaces a typed [`IngestLoss`] with exact frame/row counts, and the
/// cumulative accessors keep the books.
#[test]
fn lost_pipelined_ingest_surfaces_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        // Connection 1: swallow exactly one framed message (the pipelined
        // ingest), then hang up — the frame is gone, unacknowledged.
        let (mut s1, _) = listener.accept().expect("accept 1");
        let mut header = [0u8; HEADER_LEN];
        s1.read_exact(&mut header).expect("ingest header");
        let parsed = Header::parse(&header).expect("parse header");
        let mut payload = vec![0u8; parsed.payload_len as usize];
        s1.read_exact(&mut payload).expect("ingest payload");
        drop(s1);
        // Connection 2: the client's redial; serve empty acks.
        let (s2, _) = listener.accept().expect("accept 2");
        serve_empty_acks(s2);
    });

    let mut client = RemoteCollector::connect_with(
        addr,
        ReconnectPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
    )
    .expect("initial connect");

    let mut batch = ReportBatch::new();
    for user in 0..5u64 {
        assert!(batch.push(user, 0, 0.5));
    }
    client.ingest(&batch).expect("pipelined write succeeds");

    let err = client
        .sync()
        .expect_err("lost frames must not be silently acked");
    let loss = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<IngestLoss>())
        .expect("error must downcast to IngestLoss");
    assert_eq!(loss.lost_frames, 1, "one pipelined frame in flight");
    assert_eq!(loss.lost_rows, 5, "its rows are counted");
    assert_eq!(client.lost_frames(), 1, "cumulative frame ledger");
    assert_eq!(client.lost_rows(), 5, "cumulative row ledger");

    // The loss is reported once; the next sync proceeds against the
    // replacement connection's (empty) ledger.
    let outcome = client.sync().expect("post-loss sync proceeds");
    assert_eq!(outcome.accepted, 0);
    drop(client);
    server.join().expect("server thread");
}

/// Backoff arithmetic: doubling from `initial` (attempts are 1-based),
/// capped at `max`.
#[test]
fn backoff_doubles_and_caps() {
    let policy = ReconnectPolicy {
        max_retries: 8,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
    };
    assert_eq!(policy.backoff(1), Duration::from_millis(10));
    assert_eq!(policy.backoff(2), Duration::from_millis(20));
    assert_eq!(policy.backoff(3), Duration::from_millis(40));
    assert_eq!(policy.backoff(5), Duration::from_millis(160));
    assert_eq!(policy.backoff(6), Duration::from_millis(200), "capped");
    assert_eq!(
        policy.backoff(63),
        Duration::from_millis(200),
        "cap survives shift overflow"
    );
}
