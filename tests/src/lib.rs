//! Cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! shared helpers.

use rand::SeedableRng;

/// Deterministic RNG for integration tests.
#[must_use]
pub fn test_rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}
